"""Figure 15 — energy-efficiency and cost-efficiency at scale.

Provisions both designs to the same 8xA100 demand (so Throughput x Duration
is identical, per Section V-C) and compares:

* (a) energy-efficiency — samples per joule, i.e. inverse preprocessing
  power (paper: 11.3x average, 15.1x max in PreSto's favour);
* (b) cost-efficiency — samples per dollar of CapEx + 3-year OpEx
  (paper: 4.3x average, 5.6x max).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.cost import cost_efficiency
from repro.analysis.energy import energy_efficiency
from repro.core.systems import DisaggCpuSystem, PreStoSystem
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration

NUM_GPUS = 8


@dataclass(frozen=True)
class Fig15Result(ExperimentResult):
    """Per-model efficiency ratios (PreSto / Disagg)."""

    energy_ratio: Dict[str, float]
    cost_ratio: Dict[str, float]
    disagg_power: Dict[str, float]
    presto_power: Dict[str, float]
    disagg_cost: Dict[str, float]
    presto_cost: Dict[str, float]

    @property
    def mean_energy_ratio(self) -> float:
        """Average energy-efficiency gain (paper: 11.3)."""
        values = list(self.energy_ratio.values())
        return sum(values) / len(values)

    @property
    def mean_cost_ratio(self) -> float:
        """Average cost-efficiency gain (paper: 4.3)."""
        values = list(self.cost_ratio.values())
        return sum(values) / len(values)

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim("mean energy-efficiency gain", 11.3, self.mean_energy_ratio, 0.20),
            PaperClaim("max energy-efficiency gain", 15.1, max(self.energy_ratio.values()), 0.20),
            PaperClaim("mean cost-efficiency gain", 4.3, self.mean_cost_ratio, 0.25),
            PaperClaim("max cost-efficiency gain", 5.6, max(self.cost_ratio.values()), 0.25),
        ]

    def rows(self) -> List[Tuple]:
        return [
            (
                model,
                self.energy_ratio[model],
                self.cost_ratio[model],
                self.disagg_power[model],
                self.presto_power[model],
                self.disagg_cost[model],
                self.presto_cost[model],
            )
            for model in self.energy_ratio
        ]

    def columns(self) -> List[str]:
        return [
            "model",
            "energy gain (x)",
            "cost gain (x)",
            "Disagg W",
            "PreSto W",
            "Disagg $",
            "PreSto $",
        ]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 15: energy- and cost-efficiency (PreSto vs Disagg)",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig15", title="Figure 15", kind="figure", order=110)
def run(calibration: Calibration = CALIBRATION) -> Fig15Result:
    """Regenerate Figure 15."""
    energy_ratio: Dict[str, float] = {}
    cost_ratio: Dict[str, float] = {}
    d_power: Dict[str, float] = {}
    p_power: Dict[str, float] = {}
    d_cost: Dict[str, float] = {}
    p_cost: Dict[str, float] = {}
    for spec in models():
        disagg = DisaggCpuSystem(spec, calibration)
        presto = PreStoSystem(spec, calibration)
        cores = disagg.provision_for(NUM_GPUS).num_workers
        units = presto.provision_for(NUM_GPUS).num_workers
        demand = disagg.provision_for(NUM_GPUS).training_throughput

        disagg_power = disagg.power(cores)
        presto_power = presto.power(units)
        d_power[spec.name] = disagg_power
        p_power[spec.name] = presto_power
        energy_ratio[spec.name] = energy_efficiency(demand, presto_power) / (
            energy_efficiency(demand, disagg_power)
        )

        disagg_ce = cost_efficiency(
            demand, disagg.capex(cores), disagg_power, calibration=calibration
        )
        presto_ce = cost_efficiency(
            demand, presto.capex(units), presto_power, calibration=calibration
        )
        cost_ratio[spec.name] = presto_ce / disagg_ce
        d_cost[spec.name] = disagg.capex(cores)
        p_cost[spec.name] = presto.capex(units)
    return Fig15Result(
        energy_ratio=energy_ratio,
        cost_ratio=cost_ratio,
        disagg_power=d_power,
        presto_power=p_power,
        disagg_cost=d_cost,
        presto_cost=p_cost,
    )

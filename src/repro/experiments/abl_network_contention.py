"""Fleet sensitivity — network traffic when many jobs share the fabric.

Section VI-A (Fig. 13 discussion): "real-world datacenter fleets
concurrently handle a large number of training jobs, all of which time-share
the datacenter network; PreSto's ISP capability can be beneficial in
alleviating the preprocessing operation's pressure on network
communications."

This study quantifies that pressure analytically per trained sample:

* **Disagg** moves raw feature bytes storage -> CPU pool (with read
  amplification) *and* train-ready tensors CPU pool -> trainer;
* **PreSto** moves only the train-ready tensors storage -> trainer.

From the per-sample wire bytes and each job's training demand, the study
derives (a) total network bytes per trained sample, and (b) how many
concurrent 8-GPU jobs a storage node's 10 GbE NIC can feed before its egress
saturates — the fleet-level headroom PreSto buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.training.gpu import GpuTrainingModel


@dataclass(frozen=True)
class NetworkContentionResult(ExperimentResult):
    """Per-model wire traffic and storage-NIC job capacity."""

    disagg_bytes_per_sample: Dict[str, float]  # total fabric bytes
    presto_bytes_per_sample: Dict[str, float]
    disagg_storage_egress: Dict[str, float]  # bytes/sample leaving storage
    presto_storage_egress: Dict[str, float]
    jobs_per_nic_disagg: Dict[str, float]  # 8-GPU jobs one 10GbE NIC feeds
    jobs_per_nic_presto: Dict[str, float]

    def traffic_reduction(self, model: str) -> float:
        """Total fabric-traffic ratio, Disagg/PreSto."""
        return (
            self.disagg_bytes_per_sample[model] / self.presto_bytes_per_sample[model]
        )

    @property
    def mean_traffic_reduction(self) -> float:
        values = [self.traffic_reduction(m) for m in self.disagg_bytes_per_sample]
        return sum(values) / len(values)

    def nic_headroom(self, model: str) -> float:
        """Extra jobs per storage NIC with PreSto."""
        return self.jobs_per_nic_presto[model] / self.jobs_per_nic_disagg[model]

    def claims(self) -> List[PaperClaim]:
        headrooms = [self.nic_headroom(m) for m in self.jobs_per_nic_disagg]
        return [
            # total fabric traffic tracks Fig. 13's aggregate-RPC reduction
            PaperClaim(
                "mean fabric-traffic reduction (~Fig. 13)",
                2.9,
                self.mean_traffic_reduction,
                0.25,
            ),
            PaperClaim(
                "storage-NIC job headroom (PreSto/Disagg, mean)",
                1.6,
                sum(headrooms) / len(headrooms),
                0.25,
            ),
        ]

    def rows(self) -> List[Tuple]:
        out = []
        for model in self.disagg_bytes_per_sample:
            out.append(
                (
                    model,
                    self.disagg_bytes_per_sample[model] / 1024.0,
                    self.presto_bytes_per_sample[model] / 1024.0,
                    self.traffic_reduction(model),
                    self.jobs_per_nic_disagg[model],
                    self.jobs_per_nic_presto[model],
                )
            )
        return out

    def columns(self) -> List[str]:
        return [
            "model",
            "Disagg KiB/sample",
            "PreSto KiB/sample",
            "reduction (x)",
            "jobs/NIC Disagg",
            "jobs/NIC PreSto",
        ]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=(
                "Fleet sensitivity: network traffic per trained sample and "
                "8-GPU jobs one storage 10 GbE NIC sustains"
            ),
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("abl-contention", title="Fleet: network contention", kind="ablation", order=240)
def run(calibration: Calibration = CALIBRATION) -> NetworkContentionResult:
    """Derive fabric traffic and NIC capacity for every model."""
    gpu = GpuTrainingModel(calibration)
    disagg_total: Dict[str, float] = {}
    presto_total: Dict[str, float] = {}
    disagg_egress: Dict[str, float] = {}
    presto_egress: Dict[str, float] = {}
    jobs_disagg: Dict[str, float] = {}
    jobs_presto: Dict[str, float] = {}
    nic = calibration.network_bandwidth

    for spec in models():
        raw = (
            calibration.encoded_bytes_per_sample(spec)
            * calibration.storage_protocol_overhead
        )
        tensors = spec.train_ready_bytes_per_sample()
        demand = gpu.node_throughput(spec, 8)

        # Disagg: raw leaves storage, tensors leave the CPU pool
        disagg_total[spec.name] = raw + tensors
        disagg_egress[spec.name] = raw
        # PreSto: only tensors leave storage; nothing else on the wire
        presto_total[spec.name] = tensors
        presto_egress[spec.name] = tensors

        jobs_disagg[spec.name] = nic / (disagg_egress[spec.name] * demand)
        jobs_presto[spec.name] = nic / (presto_egress[spec.name] * demand)

    return NetworkContentionResult(
        disagg_bytes_per_sample=disagg_total,
        presto_bytes_per_sample=presto_total,
        disagg_storage_egress=disagg_egress,
        presto_storage_egress=presto_egress,
        jobs_per_nic_disagg=jobs_disagg,
        jobs_per_nic_presto=jobs_presto,
    )

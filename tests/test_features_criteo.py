"""Tests for the real Criteo TSV loader."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.features.criteo import (
    dump_criteo_tsv,
    load_criteo_tsv,
    parse_line,
)
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table
from repro.ops.pipeline import PreprocessingPipeline


def sample_line(label=1, dense_value="5", cat="7f3b"):
    fields = [str(label)] + [dense_value] * 13 + [cat] * 26
    return "\t".join(fields)


class TestParseLine:
    def test_basic(self):
        label, dense, sparse = parse_line(sample_line())
        assert label == 1
        assert dense == [5.0] * 13
        assert sparse == [0x7F3B] * 26

    def test_missing_fields(self):
        line = "\t".join(["0"] + [""] * 13 + [""] * 26)
        label, dense, sparse = parse_line(line)
        assert label == 0
        assert all(np.isnan(v) for v in dense)
        assert sparse == [-1] * 26

    def test_wrong_field_count(self):
        with pytest.raises(FormatError, match="fields"):
            parse_line("1\t2\t3")

    def test_bad_label(self):
        with pytest.raises(FormatError, match="label"):
            parse_line(sample_line(label=7))
        bad = "x" + sample_line()[1:]
        with pytest.raises(FormatError, match="bad label"):
            parse_line(bad)

    def test_bad_dense(self):
        line = sample_line(dense_value="notanint")
        with pytest.raises(FormatError, match="integer feature"):
            parse_line(line)

    def test_bad_categorical(self):
        line = sample_line(cat="zzzz")
        with pytest.raises(FormatError, match="categorical"):
            parse_line(line)


class TestLoadTsv:
    def test_load_from_lines(self):
        lines = [sample_line(label=i % 2) for i in range(8)]
        data = load_criteo_tsv(lines)
        assert len(data["label"]) == 8
        assert data["label"].tolist() == [0, 1] * 4
        lengths, values = data["cat_0"]
        assert lengths.tolist() == [1] * 8

    def test_missing_categorical_becomes_empty_list(self):
        line = "\t".join(["1"] + ["3"] * 13 + [""] + ["aa"] * 25)
        data = load_criteo_tsv([line])
        lengths, values = data["cat_0"]
        assert lengths.tolist() == [0]
        assert len(values) == 0

    def test_max_rows(self):
        lines = [sample_line() for _ in range(10)]
        data = load_criteo_tsv(lines, max_rows=3)
        assert len(data["label"]) == 3

    def test_blank_lines_skipped(self):
        data = load_criteo_tsv([sample_line(), "", "   \n", sample_line()])
        assert len(data["label"]) == 2

    def test_empty_input_rejected(self):
        with pytest.raises(FormatError, match="no rows"):
            load_criteo_tsv([])

    def test_wrong_spec_rejected(self):
        with pytest.raises(FormatError, match="expects"):
            load_criteo_tsv([sample_line()], spec=get_model("RM5"))

    def test_file_object(self):
        handle = io.StringIO(sample_line() + "\n" + sample_line() + "\n")
        data = load_criteo_tsv(handle)
        assert len(data["label"]) == 2


class TestRoundTrip:
    def test_dump_then_load(self):
        """Synthetic RM1 data survives TSV round trip (dense ints only)."""
        spec = get_model("RM1")
        original = generate_raw_table(spec, 32)
        reloaded = load_criteo_tsv(io.StringIO(dump_criteo_tsv(original)))
        np.testing.assert_array_equal(reloaded["label"], original["label"])
        np.testing.assert_array_equal(
            np.nan_to_num(reloaded["int_2"], nan=-1),
            np.nan_to_num(original["int_2"], nan=-1),
        )
        np.testing.assert_array_equal(reloaded["cat_9"][1], original["cat_9"][1])

    def test_loaded_data_is_preprocessable(self):
        """TSV-loaded rows run through the full Transform phase."""
        spec = get_model("RM1")
        data = load_criteo_tsv(
            io.StringIO(dump_criteo_tsv(generate_raw_table(spec, 24)))
        )
        pipe = PreprocessingPipeline(spec)
        batch, counts = pipe.run(data)
        assert batch.batch_size == 24
        batch.validate_index_range(pipe.table_sizes)

"""Compatibility shim only — all metadata lives in pyproject.toml.

Kept so ``pip install -e . --no-build-isolation --no-use-pep517`` still
works in offline environments without the ``wheel`` package; everywhere
else, install straight from pyproject.toml (``pip install -e .[test]``).
"""
from setuptools import setup

setup()

"""Figure 6 — CPU/memory-bandwidth utilization and LLC hit rate.

Characterizes Bucketize, SigridHash, and Log on RM1 and RM5 at kernel level:
the ops are compute-bound (high CPU utilization, memory bandwidth well under
15% of the node's 281.6 GB/s) with cache-resident working sets (~85%+ LLC
hit rate) — the observation motivating domain-specific acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.features.specs import get_model
from repro.hardware.cache import CacheModel, UtilizationSample

OPS = ("bucketize", "sigridhash", "log")
MODELS = ("RM1", "RM5")


@dataclass(frozen=True)
class Fig6Result(ExperimentResult):
    """One UtilizationSample per (model, op)."""

    samples: Dict[Tuple[str, str], UtilizationSample]

    def claims(self) -> List[PaperClaim]:
        mem_max = max(s.memory_bw_utilization for s in self.samples.values())
        llc_min = min(s.llc_hit_rate for s in self.samples.values())
        cpu_min = min(s.cpu_utilization for s in self.samples.values())
        bucketize_rm1 = self.samples[("RM1", "bucketize")].llc_hit_rate
        return [
            PaperClaim("max memory BW utilization (<0.15)", 0.13, mem_max, 0.40),
            PaperClaim("Bucketize LLC hit rate", 0.85, bucketize_rm1, 0.15),
            PaperClaim("min LLC hit rate across ops", 0.80, llc_min, 0.20),
            PaperClaim("min CPU utilization (compute-bound)", 0.85, cpu_min, 0.20),
        ]

    def rows(self) -> List[Tuple[str, str, float, float, float]]:
        return [
            (
                model,
                sample.op,
                100.0 * sample.cpu_utilization,
                100.0 * sample.memory_bw_utilization,
                100.0 * sample.llc_hit_rate,
            )
            for (model, _), sample in self.samples.items()
        ]

    def columns(self) -> List[str]:
        return ["model", "op", "CPU util (%)", "mem BW util (%)", "LLC hit (%)"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 6: kernel-level utilization of the transform ops",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig6", title="Figure 6", kind="figure", order=40)
def run() -> Fig6Result:
    """Regenerate Figure 6."""
    model = CacheModel()
    samples: Dict[Tuple[str, str], UtilizationSample] = {}
    for model_name in MODELS:
        spec = get_model(model_name)
        for op in OPS:
            samples[(model_name, op)] = model.sample(op, spec)
    return Fig6Result(samples=samples)

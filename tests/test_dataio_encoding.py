"""Unit and property tests for the column-chunk encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataio.encoding import (
    Encoding,
    _decode_rle,
    _decode_rle_scalar,
    _decode_varint,
    _decode_varint_scalar,
    _encode_rle,
    _encode_rle_scalar,
    _encode_varint,
    _encode_varint_scalar,
    best_encoding,
    decode_column,
    decode_uvarints,
    encode_column,
    encode_uvarints,
    encoded_size,
    read_uvarint,
    uvarint_lengths,
    write_uvarint,
)
from repro.errors import EncodingError


class TestVarintPrimitives:
    def test_roundtrip_small(self):
        buf = bytearray()
        write_uvarint(0, buf)
        write_uvarint(127, buf)
        write_uvarint(128, buf)
        value, offset = read_uvarint(bytes(buf), 0)
        assert value == 0
        value, offset = read_uvarint(bytes(buf), offset)
        assert value == 127
        value, offset = read_uvarint(bytes(buf), offset)
        assert value == 128
        assert offset == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            write_uvarint(-1, bytearray())

    def test_truncated_varint(self):
        with pytest.raises(EncodingError):
            read_uvarint(b"\x80", 0)

    def test_overlong_varint(self):
        with pytest.raises(EncodingError):
            read_uvarint(b"\x80" * 11 + b"\x01", 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        buf = bytearray()
        write_uvarint(value, buf)
        decoded, offset = read_uvarint(bytes(buf), 0)
        assert decoded == value
        assert offset == len(buf)


class TestCodecRoundtrips:
    @pytest.mark.parametrize("encoding", list(Encoding))
    def test_int64_roundtrip(self, encoding):
        values = np.array([0, 1, -5, 1 << 40, -(1 << 40), 7, 7, 7], dtype=np.int64)
        decoded = decode_column(encode_column(values, encoding))
        np.testing.assert_array_equal(decoded, values)
        assert decoded.dtype == np.int64

    def test_plain_float32(self):
        values = np.array([1.5, -2.25, np.nan, 0.0], dtype=np.float32)
        decoded = decode_column(encode_column(values, Encoding.PLAIN))
        np.testing.assert_array_equal(
            np.nan_to_num(decoded, nan=-1), np.nan_to_num(values, nan=-1)
        )

    def test_empty_column(self):
        for encoding in Encoding:
            values = np.array([], dtype=np.int64)
            decoded = decode_column(encode_column(values, encoding))
            assert len(decoded) == 0

    def test_int8_labels_rle(self):
        labels = np.array([0] * 100 + [1] * 3 + [0] * 50, dtype=np.int8)
        chunk = encode_column(labels, Encoding.RLE)
        assert len(chunk) < labels.nbytes  # RLE actually compresses runs
        np.testing.assert_array_equal(decode_column(chunk), labels)

    def test_varint_compresses_small_ids(self):
        values = np.arange(1000, dtype=np.int64) % 100
        assert encoded_size(values, Encoding.VARINT) < encoded_size(
            values, Encoding.PLAIN
        )

    def test_dictionary_compresses_low_cardinality(self):
        values = np.array([123456789] * 500 + [987654321] * 500, dtype=np.int64)
        assert encoded_size(values, Encoding.DICTIONARY) < encoded_size(
            values, Encoding.PLAIN
        )

    @given(
        st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=200),
        st.sampled_from(list(Encoding)),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values, encoding):
        column = np.array(values, dtype=np.int64)
        decoded = decode_column(encode_column(column, encoding))
        np.testing.assert_array_equal(decoded, column)


#: edge-case columns shared by the vectorized-vs-scalar identity tests
_EDGE_COLUMNS = [
    np.array([], dtype=np.int64),
    np.array([0], dtype=np.int64),
    np.array([-1], dtype=np.int64),
    np.array([127, 128, -127, -128], dtype=np.int64),  # 1/2-byte boundary
    np.array([2**62, -(2**62)], dtype=np.int64),
    np.array(
        [np.iinfo(np.int64).max, np.iinfo(np.int64).min], dtype=np.int64
    ),  # 2^63 boundaries -> 10-byte varints
    np.array([5, 5, 5, 5], dtype=np.int64),  # one long run
    np.array([1, 2, 3, 4], dtype=np.int64),  # single-element runs
    np.array([-3] * 100 + [7] + [-3] * 50, dtype=np.int64),
    np.arange(-5, 5, dtype=np.int8),
    np.arange(-300, 300, dtype=np.int32),
]
_EDGE_IDS = [f"edge{i}" for i in range(len(_EDGE_COLUMNS))]


class TestVectorizedMatchesScalar:
    """The numpy batch codecs must be byte-identical to the scalar paths."""

    @pytest.mark.parametrize("column", _EDGE_COLUMNS, ids=_EDGE_IDS)
    def test_varint_encode_identical(self, column):
        assert _encode_varint(column) == _encode_varint_scalar(column)

    @pytest.mark.parametrize("column", _EDGE_COLUMNS, ids=_EDGE_IDS)
    def test_varint_decode_identical(self, column):
        payload = _encode_varint_scalar(column)
        vectorized = _decode_varint(payload, column.dtype, len(column))
        scalar = _decode_varint_scalar(payload, column.dtype, len(column))
        np.testing.assert_array_equal(vectorized, scalar)
        assert vectorized.dtype == scalar.dtype

    @pytest.mark.parametrize("column", _EDGE_COLUMNS, ids=_EDGE_IDS)
    def test_rle_encode_identical(self, column):
        assert _encode_rle(column) == _encode_rle_scalar(column)

    @pytest.mark.parametrize("column", _EDGE_COLUMNS, ids=_EDGE_IDS)
    def test_rle_decode_identical(self, column):
        payload = _encode_rle_scalar(column)
        vectorized = _decode_rle(payload, column.dtype, len(column))
        scalar = _decode_rle_scalar(payload, column.dtype, len(column))
        np.testing.assert_array_equal(vectorized, scalar)
        assert vectorized.dtype == scalar.dtype

    @given(
        st.lists(
            st.integers(
                min_value=np.iinfo(np.int64).min, max_value=np.iinfo(np.int64).max
            ),
            max_size=300,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_varint_identity_property(self, values):
        column = np.array(values, dtype=np.int64)
        payload = _encode_varint(column)
        assert payload == _encode_varint_scalar(column)
        np.testing.assert_array_equal(
            _decode_varint(payload, column.dtype, len(column)),
            _decode_varint_scalar(payload, column.dtype, len(column)),
        )

    @given(
        st.lists(st.integers(min_value=-5, max_value=5), max_size=60),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=80, deadline=None)
    def test_rle_identity_property(self, run_values, max_run):
        rng = np.random.default_rng(abs(hash(tuple(run_values))) % 2**32)
        runs = rng.integers(1, max_run + 1, len(run_values))
        column = np.repeat(np.array(run_values, dtype=np.int64), runs)
        payload = _encode_rle(column)
        assert payload == _encode_rle_scalar(column)
        np.testing.assert_array_equal(
            _decode_rle(payload, column.dtype, len(column)),
            _decode_rle_scalar(payload, column.dtype, len(column)),
        )

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_uvarint_batch_matches_scalar(self, values):
        column = np.array(values, dtype=np.uint64)
        buf = bytearray()
        for value in values:
            write_uvarint(value, buf)
        payload = encode_uvarints(column)
        assert payload == bytes(buf)
        np.testing.assert_array_equal(
            decode_uvarints(np.frombuffer(payload, dtype=np.uint8), len(values)),
            column,
        )

    def test_uvarint_lengths_match_scalar(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**63, 500, dtype=np.uint64)
        values[:10] = [0, 1, 127, 128, 2**14 - 1, 2**14, 2**63 - 1, 2, 3, 4]
        for value, width in zip(values.tolist(), uvarint_lengths(values).tolist()):
            buf = bytearray()
            write_uvarint(value, buf)
            assert len(buf) == width

    def test_vectorized_decode_rejects_trailing_bytes(self):
        payload = _encode_varint(np.array([1, 2, 3], dtype=np.int64))
        with pytest.raises(EncodingError, match="trailing"):
            _decode_varint(payload, np.dtype(np.int64), 2)

    def test_vectorized_decode_rejects_truncation(self):
        with pytest.raises(EncodingError):
            _decode_varint(b"\x80", np.dtype(np.int64), 1)

    def test_vectorized_decode_rejects_overlong_varint(self):
        with pytest.raises(EncodingError, match="too long"):
            _decode_varint(b"\x80" * 10 + b"\x01", np.dtype(np.int64), 1)

    def test_vectorized_rle_rejects_zero_run(self):
        # pairs: (value=0, run=0)
        with pytest.raises(EncodingError, match="zero-length"):
            _decode_rle(b"\x00\x00", np.dtype(np.int64), 4)

    def test_vectorized_rle_rejects_overflowing_runs(self):
        payload = _encode_rle(np.array([7, 7, 7], dtype=np.int64))
        with pytest.raises(EncodingError, match="exceed"):
            _decode_rle(payload, np.dtype(np.int64), 2)

    def test_rle_rejects_runs_that_wrap_int64(self):
        # crafted run lengths summing to count modulo 2^64 must not slip a
        # huge np.repeat past validation (previously a hard crash)
        payload = bytearray()
        for _ in range(4):
            write_uvarint(0, payload)  # value
            write_uvarint(2**62, payload)  # run
        write_uvarint(0, payload)
        write_uvarint(5, payload)
        with pytest.raises(EncodingError, match="exceed"):
            _decode_rle(bytes(payload), np.dtype(np.int64), 5)

    def test_scalar_decoders_reject_uint64_overflow(self):
        # a 10-byte varint whose top byte carries bits above 2^64
        payload = bytes([0xFF] * 9 + [0x7F])
        with pytest.raises(EncodingError, match="overflows"):
            _decode_varint_scalar(payload, np.dtype(np.int64), 1)
        with pytest.raises(EncodingError):
            _decode_varint(payload, np.dtype(np.int64), 1)

    def test_read_uvarint_caps_at_ten_bytes(self):
        with pytest.raises(EncodingError, match="too long"):
            read_uvarint(b"\x80" * 10 + b"\x00", 0)


class TestFramingAndErrors:
    def test_crc_detects_corruption(self):
        chunk = bytearray(encode_column(np.arange(100, dtype=np.int64), Encoding.PLAIN))
        chunk[10] ^= 0xFF
        with pytest.raises(EncodingError, match="CRC"):
            decode_column(bytes(chunk))

    def test_too_short_chunk(self):
        with pytest.raises(EncodingError, match="too short"):
            decode_column(b"\x00\x01")

    def test_unknown_encoding_byte(self):
        chunk = bytearray(encode_column(np.arange(4, dtype=np.int64), Encoding.PLAIN))
        # flip the codec byte and fix the CRC by re-encoding manually
        import struct
        import zlib

        body = bytes([99]) + bytes(chunk[1:-4])
        crc = zlib.crc32(body) & 0xFFFFFFFF
        with pytest.raises(EncodingError, match="unknown encoding"):
            decode_column(body + struct.pack("<I", crc))

    def test_non_integer_rle_rejected(self):
        with pytest.raises(EncodingError):
            encode_column(np.zeros(4, dtype=np.float32), Encoding.RLE)

    def test_2d_rejected(self):
        with pytest.raises(EncodingError):
            encode_column(np.zeros((2, 2), dtype=np.int64), Encoding.PLAIN)

    def test_unsupported_dtype(self):
        with pytest.raises(EncodingError):
            encode_column(np.zeros(4, dtype=np.uint16), Encoding.PLAIN)


class TestBestEncoding:
    def test_floats_are_plain(self):
        assert best_encoding(np.zeros(16, dtype=np.float32)) is Encoding.PLAIN

    def test_runs_pick_rle(self):
        values = np.zeros(10_000, dtype=np.int64)
        assert best_encoding(values) is Encoding.RLE

    def test_best_is_minimal(self):
        values = np.arange(500, dtype=np.int64)
        chosen = best_encoding(values)
        sizes = {enc: encoded_size(values, enc) for enc in Encoding}
        assert sizes[chosen] == min(sizes.values())

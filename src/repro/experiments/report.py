"""Full paper-vs-measured report: run every experiment, render every table,
and summarize which claims hold.  ``python -m repro.experiments.report``
prints the whole thing.

The report is registry-driven: every experiment module registers itself
with :data:`repro.api.EXPERIMENT_REGISTRY`, and this module just asks the
registry for the paper-ordered specs.  ``run_all`` therefore picks up
user-registered experiments automatically, can fan out across a
``multiprocessing`` pool, and can replay results from a
:class:`~repro.api.experiment.RunStore` cache — all while producing output
byte-identical to a serial, uncached run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.experiment import (
    EXPERIMENT_REGISTRY,
    ExperimentRun,
    RunStore,
    run_experiments,
)
from repro.batch import BatchJournal, BatchOutcome, BatchPolicy
from repro.experiments.common import PaperClaim


class ExperimentFailure:
    """A non-ok batch outcome wearing the result protocol.

    In ``degrade`` mode a failed/timed-out/interrupted experiment still
    gets a slot in the report; this marker renders the failure loudly,
    contributes no claims, and exports its outcome record — so a partial
    report stays well-formed instead of the whole run dying.
    """

    def __init__(self, outcome: BatchOutcome) -> None:
        self.outcome = outcome

    def columns(self) -> Tuple[str, ...]:
        return ("state", "attempts", "error")

    def rows(self) -> List[Tuple]:
        o = self.outcome
        return [(o.state, o.attempts, o.error or "")]

    def claims(self) -> List[PaperClaim]:
        return []

    def render(self) -> str:
        o = self.outcome
        return (
            f"EXPERIMENT {o.state.upper()} after {o.attempts} attempt(s): "
            f"{o.error}\n(re-run with --resume to retry just the missing "
            f"experiments)"
        )

    def to_dict(self) -> Dict:
        return self.outcome.to_dict()


def _selected_specs(
    include_ablations: bool = True, kinds: Optional[Sequence[str]] = None
):
    """Paper-ordered specs, filtered by ``kinds`` (or the legacy flag)."""
    specs = EXPERIMENT_REGISTRY.experiments()
    if kinds is not None:
        wanted = set(kinds)
        return [spec for spec in specs if spec.kind in wanted]
    if not include_ablations:
        return [spec for spec in specs if spec.kind != "ablation"]
    return list(specs)


def run_all(
    include_ablations: bool = True,
    *,
    kinds: Optional[Sequence[str]] = None,
    parallel: bool = False,
    processes: Optional[int] = None,
    store: Optional[RunStore] = None,
    force: bool = False,
    policy: Optional[BatchPolicy] = None,
    failure_mode: Optional[str] = None,
    journal: Optional[BatchJournal] = None,
    resume: bool = False,
) -> Dict[str, object]:
    """Run every registered experiment (and, by default, every ablation).

    Results come back keyed by paper title, in paper order, regardless of
    ``parallel`` or cache hits — a parallel or cached run renders
    byte-identically to a serial fresh one.  In ``degrade`` mode a non-ok
    experiment's slot holds an :class:`ExperimentFailure` marker instead
    of aborting the report; with a ``journal``, ``resume=True`` replays
    completed experiments and re-runs only the missing ones.
    """
    specs = _selected_specs(include_ablations, kinds)
    runs = [ExperimentRun(spec.id) for spec in specs]
    results = run_experiments(
        runs, parallel=parallel, processes=processes, store=store,
        force=force, policy=policy, failure_mode=failure_mode,
        journal=journal, resume=resume,
    )
    effective_mode = failure_mode or (policy.failure_mode if policy else None)
    if effective_mode == "degrade":
        results = [
            outcome.result if outcome.ok else ExperimentFailure(outcome)
            for outcome in results
        ]
    return {spec.title: result for spec, result in zip(specs, results)}


def collect_claims(results: Dict[str, object]) -> List[Tuple[str, PaperClaim]]:
    """All paper claims with their measured values."""
    claims: List[Tuple[str, PaperClaim]] = []
    for name, result in results.items():
        getter = getattr(result, "claims", None)
        if getter is not None:
            claims.extend((name, claim) for claim in getter())
    return claims


def render_report(
    results: Optional[Dict[str, object]] = None, **run_kwargs
) -> str:
    """The full text report (every table + the claims scoreboard).

    Keyword arguments (``parallel``, ``processes``, ``store``, ``force``,
    ``kinds``, ``include_ablations``) are forwarded to :func:`run_all` when
    ``results`` is not supplied.
    """
    if results is None:
        results = run_all(**run_kwargs)
    sections = []
    for name, result in results.items():
        sections.append("=" * 78)
        sections.append(name)
        sections.append("=" * 78)
        sections.append(result.render())
        sections.append("")
    claims = collect_claims(results)
    holding = sum(1 for _, c in claims if c.holds)
    sections.append("=" * 78)
    sections.append(f"CLAIMS SCOREBOARD: {holding}/{len(claims)} within tolerance")
    sections.append("=" * 78)
    for name, claim in claims:
        sections.append(f"{name}: {claim.render().strip()}")
    return "\n".join(sections)


def experiment_record(
    result, spec=None, run: Optional[ExperimentRun] = None
) -> Dict:
    """One experiment's JSON record — the shared shape behind both
    ``repro run --json`` items and ``repro report --json`` entries.

    ``run`` (when given) adds the originating :class:`ExperimentRun` so the
    record is replayable; ``spec`` defaults to the run's spec.
    """
    if spec is None and run is not None:
        spec = run.spec
    record = {
        "id": spec.id if spec else None,
        "title": spec.title if spec else None,
        "kind": spec.kind if spec else None,
        "columns": list(result.columns()),
        "rows": [list(row) for row in result.rows()],
        "claims": [claim.to_dict() for claim in result.claims()],
        "result": result.to_dict(),
    }
    if run is not None:
        record["run"] = run.to_dict()
    return record


def report_payload(results: Optional[Dict[str, object]] = None, **run_kwargs) -> Dict:
    """The report as one JSON-able payload (``repro report --json``).

    Per experiment: id, title, kind, columns/rows, claims, and the full
    encoded result; plus the held/total claims scoreboard.
    """
    if results is None:
        results = run_all(**run_kwargs)
    by_title = {
        spec.title: spec for spec in EXPERIMENT_REGISTRY.experiments()
    }
    experiments = []
    held = total = 0
    for title, result in results.items():
        record = experiment_record(result, spec=by_title.get(title))
        if record["title"] is None:
            record["title"] = title
        held += sum(1 for c in record["claims"] if c["holds"])
        total += len(record["claims"])
        experiments.append(record)
    return {
        "experiments": experiments,
        "scoreboard": {"held": held, "total": total},
    }


def main() -> None:
    """CLI entry point."""
    print(render_report())


if __name__ == "__main__":
    main()

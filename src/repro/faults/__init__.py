"""Deterministic fault injection for the serve and exec tiers.

``repro.faults`` is the harness behind ``repro chaos`` and the
``--faults`` flag on ``repro serve``: seeded :class:`FaultPlan` schedules,
a process-global :class:`FaultInjector`, and probe functions
(:func:`fault_point` / :func:`fault_stage`) woven through the worker pool,
the service data plane, the job-log index, the wire protocol, and the row
format writer.  With no injector installed every probe is a single
``None`` test — zero overhead on the production path.

The chaos matrix lives in :mod:`repro.faults.chaos`, imported lazily by
the CLI so that probe sites importing this package never pull in the
serve tier (which itself hosts probes).
"""

from repro.errors import ChaosError, FaultError
from repro.faults.injector import (
    DEFAULT_HANG_S,
    FaultInjector,
    active_injector,
    fault_point,
    fault_stage,
    install,
    installed,
    uninstall,
)
from repro.faults.plan import (
    DEFAULT_ACTIONS,
    FAULT_ACTIONS,
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "ChaosError",
    "DEFAULT_ACTIONS",
    "DEFAULT_HANG_S",
    "FAULT_ACTIONS",
    "FAULT_POINTS",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "active_injector",
    "fault_point",
    "fault_stage",
    "install",
    "installed",
    "uninstall",
]

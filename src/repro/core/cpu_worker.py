"""Baseline CPU preprocessing worker (one worker per core, Section II-D).

A CPU worker executes the whole ETL sequence serially, so its throughput is
simply ``batch / latency``.  The worker can also run *functionally*: given a
stored partition it actually extracts, transforms, and packs the mini-batch
via the functional layer — integration tests use this to prove the modeled
system computes the same tensors as a direct in-memory pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dataio.columnar import ColumnarFileReader
from repro.features.minibatch import MiniBatch
from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.hardware.cpu import CpuCoreModel
from repro.core.worker import PreprocessingWorker
from repro.ops.pipeline import OpCounts, PreprocessingPipeline


class CpuPreprocessingWorker(PreprocessingWorker):
    """One disaggregated (or co-located) CPU preprocessing worker."""

    kind = "Disagg"

    def __init__(
        self,
        spec: ModelSpec,
        calibration: Calibration = CALIBRATION,
        remote_storage: bool = True,
        colocated: bool = False,
        pipeline: Optional[PreprocessingPipeline] = None,
    ) -> None:
        super().__init__(spec)
        self.cal = calibration
        self.remote_storage = remote_storage
        self.colocated = colocated
        self.model = CpuCoreModel(calibration)
        self.pipeline = pipeline or PreprocessingPipeline(spec)

    # -- performance -----------------------------------------------------------

    def batch_breakdown(self) -> Dict[str, float]:
        """Figure 5 step breakdown for one mini-batch on one core.

        Co-located workers share the training node with the trainer process,
        so every step is slowed by the co-location interference factor
        (Section III-A / Figure 3).
        """
        latencies = self.model.batch_latency(
            self.spec, remote_storage=self.remote_storage
        )
        breakdown = latencies.as_dict()
        if self.colocated:
            slowdown = 1.0 / self.cal.colocation_factor
            breakdown = {step: value * slowdown for step, value in breakdown.items()}
        return breakdown

    def throughput(self) -> float:
        """Serial worker: one batch per end-to-end latency."""
        return self.spec.batch_size / self.batch_latency()

    # -- functional execution ----------------------------------------------------

    def preprocess_partition(
        self, file_bytes: bytes, batch_id: int = 0
    ) -> Tuple[MiniBatch, OpCounts]:
        """Actually run Extract + Transform on one stored partition."""
        reader = ColumnarFileReader(file_bytes)
        raw = reader.read_columns(self.pipeline.required_columns())
        return self.pipeline.run(raw, batch_id=batch_id)

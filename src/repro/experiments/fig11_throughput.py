"""Figure 11 — preprocessing throughput: PreSto vs Disagg(N).

Compares a single SmartSSD against disaggregated CPU configurations with 1,
16, 32, and 64 cores on every model, normalized to Disagg(1).

Paper claims: a single SmartSSD consistently outperforms Disagg(32); 64
cores pull ahead again, but only modestly (~27% on average) and at 2x node
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    build_system,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration

CORE_COUNTS = (1, 16, 32, 64)


@dataclass(frozen=True)
class Fig11Result(ExperimentResult):
    """Throughput (samples/s) per design per model."""

    disagg: Dict[str, Dict[int, float]]  # model -> cores -> samples/s
    presto: Dict[str, float]  # model -> samples/s (one SmartSSD)

    def normalized(self, model: str) -> Dict[str, float]:
        """Bars of one model's group, normalized to Disagg(1)."""
        base = self.disagg[model][1]
        bars = {f"Disagg({n})": self.disagg[model][n] / base for n in CORE_COUNTS}
        bars["PreSto"] = self.presto[model] / base
        return bars

    def presto_over_disagg32(self, model: str) -> float:
        """PreSto vs 32 cores (paper: consistently > 1)."""
        return self.presto[model] / self.disagg[model][32]

    def disagg64_over_presto(self, model: str) -> float:
        """64 cores vs PreSto (paper average: 1.27)."""
        return self.disagg[model][64] / self.presto[model]

    @property
    def mean_disagg64_over_presto(self) -> float:
        ratios = [self.disagg64_over_presto(m) for m in self.presto]
        return sum(ratios) / len(ratios)

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim(
                "min PreSto/Disagg(32) (>1 everywhere)",
                1.1,
                min(self.presto_over_disagg32(m) for m in self.presto),
                0.5,
            ),
            PaperClaim(
                "mean Disagg(64)/PreSto",
                1.27,
                self.mean_disagg64_over_presto,
                0.25,
            ),
        ]

    def rows(self) -> List[Tuple]:
        out = []
        for model in self.presto:
            bars = self.normalized(model)
            out.append(
                (
                    model,
                    bars["Disagg(1)"],
                    bars["Disagg(16)"],
                    bars["Disagg(32)"],
                    bars["Disagg(64)"],
                    bars["PreSto"],
                )
            )
        return out

    def columns(self) -> List[str]:
        return ["model", "Disagg(1)", "Disagg(16)", "Disagg(32)", "Disagg(64)", "PreSto"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 11: preprocessing throughput normalized to Disagg(1)",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig11", title="Figure 11", kind="figure", order=70)
def run(calibration: Calibration = CALIBRATION) -> Fig11Result:
    """Regenerate Figure 11."""
    disagg: Dict[str, Dict[int, float]] = {}
    presto: Dict[str, float] = {}
    for spec in models():
        cpu_system = build_system("Disagg", spec, calibration)
        disagg[spec.name] = {
            n: cpu_system.aggregate_throughput(n) for n in CORE_COUNTS
        }
        presto[spec.name] = build_system(
            "PreSto", spec, calibration
        ).worker_throughput()
    return Fig11Result(disagg=disagg, presto=presto)

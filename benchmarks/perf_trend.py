#!/usr/bin/env python
"""Per-kernel perf delta between two ``repro bench`` JSON reports.

Usage::

    python benchmarks/perf_trend.py BASELINE.json CURRENT.json

A thin wrapper over :mod:`repro.telemetry`: both reports are flattened to
timing events, summarized, and run through the same direction-aware
comparison the ``repro trend`` CLI gates on — one comparison engine, two
surfaces.  Prints the GitHub-flavoured markdown table CI appends to
``$GITHUB_STEP_SUMMARY`` after the ``bench --quick`` smoke run, comparing
``ns_per_element`` for every (op, variant).  This is a *report*, not a
gate: shared runners are noisy and quick mode uses smaller inputs than
the committed full-mode baseline, so deltas show the trend, not a
pass/fail verdict.  Exit status is 0 whenever both reports parse.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"
))

from repro import telemetry  # noqa: E402
from repro.errors import TelemetryError  # noqa: E402

#: |delta| below this is runner noise; flagged with an em dash, not an arrow
NOISE_BAND = 0.15

#: the machine-portable trajectory metric the table tracks
METRIC = "ns_per_element"


def _summary(path: str, run_id: str) -> telemetry.RunSummary:
    """One report's ``ns_per_element`` samples (other metrics dropped so
    the table stays one row per kernel, like it always was)."""
    events = telemetry.events_from_bench_report(path, run_id=run_id)
    summary = telemetry.summarize_events(events, run_id=run_id,
                                         recorded_at=0.0)
    return telemetry.RunSummary(
        run_id=summary.run_id,
        recorded_at=summary.recorded_at,
        samples=tuple(s for s in summary.samples if s.metric == METRIC),
    )


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    try:
        baseline = _summary(argv[1], "baseline")
        current = _summary(argv[2], "current")
    except TelemetryError as exc:
        print(f"perf-trend: cannot read reports: {exc}", file=sys.stderr)
        return 2
    comparison = telemetry.compare_summaries(
        current,
        [baseline],
        thresholds={METRIC: 1.0 + NOISE_BAND},
    )
    print("### Kernel perf trend")
    print()
    print(
        f"ns/element, current run vs committed baseline ({argv[1]}). "
        f"Report-only — runners are noisy and modes use different input "
        f"sizes; |Δ| under {NOISE_BAND:.0%} is within the noise band."
    )
    print()
    print("| op | variant | baseline ns/el | current ns/el | ratio | trend |")
    print("|---|---|---:|---:|---:|---|")
    marks = {"regression": "slower ⬆", "improvement": "faster ⬇",
             "within": "—"}
    new, missing = [], []
    for delta in comparison.deltas:
        name = f"`{delta.task}/{delta.stage}`"
        if delta.status == "new":
            new.append(name)
            continue
        if delta.status == "missing":
            missing.append(name)
            continue
        print(
            f"| {delta.task} | {delta.stage} | {delta.baseline:,.1f} "
            f"| {delta.current:,.1f} | {delta.ratio:.2f}x "
            f"| {marks[delta.status]} |"
        )
    if new:
        print()
        print(f"New since baseline (no comparison): {', '.join(new)}")
    if missing:
        print()
        print(
            f"**Missing from this run** (present in baseline — did a bench "
            f"section disappear?): {', '.join(missing)}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

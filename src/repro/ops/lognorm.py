"""Log — dense feature normalization.

TorchArrow's DLRM recipe normalizes each dense feature with
``log(x + 1)`` after clamping negatives to zero, compressing the heavy-tailed
count distributions Criteo-style data exhibits.  NaNs that survive the fill
op are treated as zero, matching the null-handling of the reference pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OpError


def log_normalize(values: np.ndarray) -> np.ndarray:
    """Apply ``log(max(x, 0) + 1)`` elementwise; output float32."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise OpError(f"log_normalize input must be 1-D, got shape {values.shape}")
    cleaned = np.nan_to_num(values.astype(np.float64), nan=0.0)
    cleaned = np.maximum(cleaned, 0.0)
    return np.log1p(cleaned).astype(np.float32)

"""Fleet-level preprocessing scheduler.

Section III-A: "hundreds to thousands of such production-level RecSys models
are developed by ML engineers, invoking numerous concurrent training jobs
executed over several tens of thousands of high-performance GPUs".  Each job
needs its own preprocessing allocation; the fleet operator provisions a
finite resource pool (CPU cores for Disagg, SmartSSDs for PreSto) and admits
jobs against it.

The scheduler implements exactly that: per-job T/P sizing, first-fit
admission against pool capacity, and fleet-level power/cost accounting —
the substrate for the multi-job ablation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ProvisioningError
from repro.features.specs import ModelSpec
from repro.core.provision import ProvisioningPlan
from repro.core.systems import PreprocessingSystem


@dataclass(frozen=True)
class TrainingJob:
    """One training job: a model trained on some number of GPUs."""

    job_id: str
    spec: ModelSpec
    num_gpus: int = 8

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ConfigurationError(f"job {self.job_id!r} needs at least one GPU")


@dataclass
class JobAllocation:
    """Outcome of admitting one job."""

    job: TrainingJob
    plan: ProvisioningPlan
    admitted: bool
    reason: str = ""

    @property
    def workers(self) -> int:
        """Workers granted (0 when rejected)."""
        return self.plan.num_workers if self.admitted else 0


@dataclass
class FleetReport:
    """Fleet-level outcome of scheduling a job mix."""

    system_name: str
    pool_capacity: int
    allocations: List[JobAllocation] = field(default_factory=list)
    power_watts: float = 0.0
    capex: float = 0.0

    @property
    def admitted_jobs(self) -> List[JobAllocation]:
        return [a for a in self.allocations if a.admitted]

    @property
    def rejected_jobs(self) -> List[JobAllocation]:
        return [a for a in self.allocations if not a.admitted]

    @property
    def workers_used(self) -> int:
        """Total pool capacity consumed."""
        return sum(a.workers for a in self.allocations)

    @property
    def utilization(self) -> float:
        """Fraction of the pool consumed."""
        if self.pool_capacity <= 0:
            return 0.0
        return self.workers_used / self.pool_capacity

    @property
    def admitted_gpu_demand(self) -> float:
        """Aggregate training samples/s the admitted jobs consume."""
        return sum(a.plan.training_throughput for a in self.admitted_jobs)


class FleetScheduler:
    """First-fit admission of training jobs against a preprocessing pool."""

    def __init__(self, system_factory, pool_capacity: int) -> None:
        if pool_capacity <= 0:
            raise ConfigurationError("pool_capacity must be positive")
        self.system_factory = system_factory
        self.pool_capacity = pool_capacity

    def schedule(self, jobs: List[TrainingJob]) -> FleetReport:
        """Admit jobs in order while the pool has room.

        Per-model worker throughput is measured once and cached, mirroring
        the preprocess manager's offline P measurement.
        """
        if not jobs:
            raise ProvisioningError("no jobs to schedule")
        throughput_cache: Dict[str, Tuple[PreprocessingSystem, float]] = {}
        remaining = self.pool_capacity
        allocations: List[JobAllocation] = []
        total_workers = 0
        reference_system: Optional[PreprocessingSystem] = None

        for job in jobs:
            key = job.spec.name
            if key not in throughput_cache:
                system = self.system_factory(job.spec)
                throughput_cache[key] = (system, system.worker_throughput())
            system, worker_throughput = throughput_cache[key]
            reference_system = reference_system or system
            plan = system.provision_for(job.num_gpus)
            if plan.num_workers <= remaining:
                allocations.append(JobAllocation(job=job, plan=plan, admitted=True))
                remaining -= plan.num_workers
                total_workers += plan.num_workers
            else:
                allocations.append(
                    JobAllocation(
                        job=job,
                        plan=plan,
                        admitted=False,
                        reason=(
                            f"needs {plan.num_workers} workers, "
                            f"{remaining} left in the pool"
                        ),
                    )
                )

        assert reference_system is not None
        return FleetReport(
            system_name=reference_system.name,
            pool_capacity=self.pool_capacity,
            allocations=allocations,
            power_watts=reference_system.power(total_workers),
            capex=reference_system.capex(total_workers),
        )

    def min_pool_for(self, jobs: List[TrainingJob]) -> int:
        """Smallest pool that admits every job."""
        if not jobs:
            raise ProvisioningError("no jobs given")
        throughput_cache: Dict[str, PreprocessingSystem] = {}
        total = 0
        for job in jobs:
            if job.spec.name not in throughput_cache:
                throughput_cache[job.spec.name] = self.system_factory(job.spec)
            total += throughput_cache[job.spec.name].provision_for(job.num_gpus).num_workers
        return total

"""Benchmark: regenerate the paper's Fig13 via repro.experiments.fig13_network."""

from conftest import assert_claims, report

from repro.experiments import fig13_network


def test_fig13(benchmark):
    """Time the fig13 experiment and verify its paper claims."""
    result = benchmark(fig13_network.run)
    report(result)
    assert_claims(result)

"""Arrival traces — the workload a fleet simulation replays.

The paper's cost argument (Section III-A) is about "numerous concurrent
training jobs" arriving over time, not a fixed job mix.  A
:class:`Trace` is the frozen record of that workload: a tuple of
:class:`JobArrival` events (model, GPU count, duration, submit time,
priority), sorted by submit time, produced either by a **seeded
generator** (Poisson, diurnal, bursty flash-crowd — the same seed always
yields the byte-identical trace) or **replayed from a JSONL file**
(``Trace.load``/``Trace.save`` round-trip byte-exactly), so every fleet
run is deterministic by seed or by recorded file.

Generators use :class:`random.Random` seeded with ``f"{kind}:{seed}"``
— no global RNG state, no numpy, stable across platforms and Python
versions the repo supports.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, FleetError
from repro.features.specs import MODEL_NAMES

#: the built-in arrival-process shapes
TRACE_KINDS = ("poisson", "diurnal", "bursty")

#: one simulated day — the default trace horizon
DAY_S = 86_400.0

#: JSONL header fields (first line of a saved trace)
_TRACE_FORMAT = "repro-fleet-trace"
_TRACE_VERSION = 1

#: production fleets skew toward the big models (the abl_multijob mix)
_MODEL_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("RM1", 1), ("RM2", 2), ("RM3", 2), ("RM4", 2), ("RM5", 3),
)

#: GPU counts per job, weighted toward the common 8-GPU shape
_GPU_CHOICES: Tuple[int, ...] = (8, 8, 8, 8, 16, 16, 32)

#: job priorities (0 = batch, 2 = production-critical), weighted
_PRIORITY_CHOICES: Tuple[int, ...] = (0, 0, 0, 1, 1, 2)


@dataclass(frozen=True)
class JobArrival:
    """One training-job arrival: what shows up, when, and how big."""

    job_id: str
    model: str
    num_gpus: int
    duration_s: float
    submit_s: float
    priority: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.job_id, str) or not self.job_id.strip():
            raise ConfigurationError(
                f"job_id must be a non-empty string, got {self.job_id!r}"
            )
        if not isinstance(self.model, str) or not self.model.strip():
            raise ConfigurationError(
                f"arrival {self.job_id!r}: model must be a non-empty string"
            )
        if not isinstance(self.num_gpus, int) or self.num_gpus <= 0:
            raise ConfigurationError(
                f"arrival {self.job_id!r}: num_gpus must be a positive int, "
                f"got {self.num_gpus!r}"
            )
        if not isinstance(self.duration_s, (int, float)) or self.duration_s <= 0:
            raise ConfigurationError(
                f"arrival {self.job_id!r}: duration_s must be positive, "
                f"got {self.duration_s!r}"
            )
        if not isinstance(self.submit_s, (int, float)) or self.submit_s < 0:
            raise ConfigurationError(
                f"arrival {self.job_id!r}: submit_s must be non-negative, "
                f"got {self.submit_s!r}"
            )
        if not isinstance(self.priority, int) or self.priority < 0:
            raise ConfigurationError(
                f"arrival {self.job_id!r}: priority must be a non-negative "
                f"int, got {self.priority!r}"
            )
        object.__setattr__(self, "duration_s", float(self.duration_s))
        object.__setattr__(self, "submit_s", float(self.submit_s))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "model": self.model,
            "num_gpus": self.num_gpus,
            "duration_s": self.duration_s,
            "submit_s": self.submit_s,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobArrival":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown JobArrival keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class Trace:
    """A frozen arrival trace: generator metadata + sorted arrivals."""

    kind: str
    seed: int
    arrivals: Tuple[JobArrival, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind.strip():
            raise ConfigurationError("trace kind must be a non-empty string")
        if not isinstance(self.seed, int):
            raise ConfigurationError(
                f"trace seed must be an int, got {self.seed!r}"
            )
        arrivals = tuple(self.arrivals)
        seen = set()
        for arrival in arrivals:
            if not isinstance(arrival, JobArrival):
                raise ConfigurationError(
                    f"arrivals must hold JobArrival entries, got {arrival!r}"
                )
            if arrival.job_id in seen:
                raise ConfigurationError(
                    f"duplicate job_id {arrival.job_id!r} in trace"
                )
            seen.add(arrival.job_id)
        for earlier, later in zip(arrivals, arrivals[1:]):
            if later.submit_s < earlier.submit_s:
                raise ConfigurationError(
                    "trace arrivals must be sorted by submit_s "
                    f"({later.job_id!r} at {later.submit_s} follows "
                    f"{earlier.job_id!r} at {earlier.submit_s})"
                )
        object.__setattr__(self, "arrivals", arrivals)

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def horizon_s(self) -> float:
        """Submit time of the last arrival (0.0 for an empty trace)."""
        return self.arrivals[-1].submit_s if self.arrivals else 0.0

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "arrivals": [a.to_dict() for a in self.arrivals],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Trace":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown Trace keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        payload = dict(data)
        payload["arrivals"] = tuple(
            JobArrival.from_dict(a) for a in payload.get("arrivals", ())
        )
        return cls(**payload)

    def to_jsonl(self) -> str:
        """The replayable JSONL form: one header line, one line per
        arrival, sorted keys and fixed separators — so the same trace
        always serializes to the same bytes."""
        header = {
            "format": _TRACE_FORMAT,
            "version": _TRACE_VERSION,
            "kind": self.kind,
            "seed": self.seed,
            "num_jobs": len(self.arrivals),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines += [
            json.dumps(a.to_dict(), sort_keys=True, separators=(",", ":"))
            for a in self.arrivals
        ]
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise FleetError("trace file is empty")
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise FleetError(f"trace header is not valid JSON: {exc}")
        if not isinstance(header, dict) or header.get("format") != _TRACE_FORMAT:
            raise FleetError(
                f"not a {_TRACE_FORMAT} file (header {lines[0][:80]!r})"
            )
        if header.get("version") != _TRACE_VERSION:
            raise FleetError(
                f"unsupported trace version {header.get('version')!r} "
                f"(this build reads version {_TRACE_VERSION})"
            )
        arrivals = []
        for number, line in enumerate(lines[1:], start=2):
            try:
                arrivals.append(JobArrival.from_dict(json.loads(line)))
            except (ValueError, ConfigurationError) as exc:
                raise FleetError(f"trace line {number}: {exc}")
        declared = header.get("num_jobs")
        if declared is not None and declared != len(arrivals):
            raise FleetError(
                f"trace header declares {declared} jobs but the file "
                f"holds {len(arrivals)}"
            )
        return cls(
            kind=header.get("kind", "recorded"),
            seed=header.get("seed", 0),
            arrivals=tuple(arrivals),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def load(cls, path: str) -> "Trace":
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise FleetError(f"cannot read trace {path}: {exc}")
        return cls.from_jsonl(text)


# ---------------------------------------------------------------------------
# seeded generators
# ---------------------------------------------------------------------------


def _submit_times_poisson(
    rng: random.Random, num_jobs: int, horizon_s: float
) -> List[float]:
    """Homogeneous Poisson arrivals at the rate that spans the horizon."""
    rate = num_jobs / horizon_s
    t, times = 0.0, []
    while len(times) < num_jobs:
        t += rng.expovariate(rate)
        times.append(t)
    return times


def _diurnal_intensity(t: float) -> float:
    """Relative arrival intensity at simulated time ``t``: a day-period
    wave, quiet at night (t=0), peaking mid-day — the "millions of users"
    load shape the serving-side traffic imprints on training submissions."""
    return 0.25 + 0.75 * math.sin(math.pi * ((t % DAY_S) / DAY_S)) ** 2


def _submit_times_diurnal(
    rng: random.Random, num_jobs: int, horizon_s: float
) -> List[float]:
    """Non-homogeneous Poisson via thinning against the diurnal wave."""
    max_intensity = 1.0
    mean_intensity = 0.625  # time average of _diurnal_intensity
    rate = num_jobs / horizon_s / mean_intensity
    t, times = 0.0, []
    while len(times) < num_jobs:
        t += rng.expovariate(rate * max_intensity)
        if rng.random() < _diurnal_intensity(t) / max_intensity:
            times.append(t)
    return times


def _submit_times_bursty(
    rng: random.Random, num_jobs: int, horizon_s: float
) -> List[float]:
    """Poisson base load plus flash-crowd bursts (re-train storms)."""
    num_burst_jobs = num_jobs // 3
    base = _submit_times_poisson(rng, num_jobs - num_burst_jobs, horizon_s)
    num_bursts = max(1, num_jobs // 100)
    epochs = sorted(rng.uniform(0.0, horizon_s) for _ in range(num_bursts))
    burst: List[float] = []
    for index in range(num_burst_jobs):
        epoch = epochs[index % num_bursts]
        burst.append(epoch + rng.expovariate(1.0 / 90.0))
    return sorted(base + burst)


_SUBMIT_TIMES = {
    "poisson": _submit_times_poisson,
    "diurnal": _submit_times_diurnal,
    "bursty": _submit_times_bursty,
}


def generate_trace(
    kind: str = "diurnal",
    num_jobs: int = 1000,
    seed: int = 0,
    horizon_s: float = DAY_S,
    mean_duration_s: float = 5_400.0,
    models: Optional[Sequence[str]] = None,
) -> Trace:
    """A frozen, seeded synthetic trace — same arguments, same bytes.

    ``kind`` picks the arrival process (:data:`TRACE_KINDS`); jobs draw a
    model (skewed toward the big ones), a GPU count, a log-normal
    duration around ``mean_duration_s``, and a priority, all from one
    :class:`random.Random` stream seeded with ``f"{kind}:{seed}"``.
    """
    if kind not in _SUBMIT_TIMES:
        raise ConfigurationError(
            f"unknown trace kind {kind!r}; known: {', '.join(TRACE_KINDS)}"
        )
    if not isinstance(num_jobs, int) or num_jobs <= 0:
        raise ConfigurationError(
            f"num_jobs must be a positive int, got {num_jobs!r}"
        )
    if horizon_s <= 0:
        raise ConfigurationError(
            f"horizon_s must be positive, got {horizon_s!r}"
        )
    if mean_duration_s <= 0:
        raise ConfigurationError(
            f"mean_duration_s must be positive, got {mean_duration_s!r}"
        )
    names: Tuple[str, ...]
    weights: Tuple[int, ...]
    if models is None:
        names = tuple(m for m, _ in _MODEL_WEIGHTS)
        weights = tuple(w for _, w in _MODEL_WEIGHTS)
    else:
        names = tuple(models)
        weights = tuple(1 for _ in names)
        for name in names:
            if name not in MODEL_NAMES:
                raise ConfigurationError(
                    f"unknown model {name!r}; expected one of {MODEL_NAMES}"
                )
    if not names:
        raise ConfigurationError("models must name at least one model")

    rng = random.Random(f"{kind}:{seed}")
    times = _SUBMIT_TIMES[kind](rng, num_jobs, horizon_s)
    # log-normal durations with sigma=0.6, mean pinned to mean_duration_s
    sigma = 0.6
    mu = math.log(mean_duration_s) - sigma * sigma / 2.0
    arrivals = []
    for index, submit in enumerate(sorted(times)):
        duration = rng.lognormvariate(mu, sigma)
        duration = min(max(duration, 300.0), 6.0 * mean_duration_s)
        arrivals.append(
            JobArrival(
                job_id=f"job-{index:05d}",
                model=rng.choices(names, weights=weights)[0],
                num_gpus=rng.choice(_GPU_CHOICES),
                duration_s=round(duration, 3),
                submit_s=round(submit, 3),
                priority=rng.choice(_PRIORITY_CHOICES),
            )
        )
    return Trace(kind=kind, seed=seed, arrivals=tuple(arrivals))

"""Cross-module integration tests: raw data -> storage -> extract ->
transform -> train-ready tensors, through the real functional components."""

import numpy as np
import pytest

from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.dataio.columnar import ColumnarFileReader
from repro.dataio.partition import RowPartitioner
from repro.features.specs import get_model
from repro.features.synthetic import SyntheticTableGenerator
from repro.ops.pipeline import PreprocessingPipeline
from repro.storage.cluster import DistributedStorage
from repro.storage.smartssd import SmartSsd


@pytest.fixture(scope="module")
def pipeline_world():
    """A small but complete deployment: RM1 data partitioned over two
    SmartSSDs."""
    spec = get_model("RM1")
    generator = SyntheticTableGenerator(spec, seed=42)
    data = generator.generate(256)
    partitioner = RowPartitioner(spec.schema(), rows_per_partition=64)
    partitions = partitioner.partition_all(data)
    devices = [SmartSsd(f"isp{i}") for i in range(2)]
    storage = DistributedStorage(devices)
    storage.store_partitions("rm1", partitions)
    return spec, data, partitions, storage, devices


class TestStorageToTensors:
    def test_stored_equals_direct_pipeline(self, pipeline_world):
        """Preprocessing a stored partition gives the same tensors as
        running the pipeline on the in-memory rows directly."""
        spec, data, partitions, storage, _ = pipeline_world
        pipe = PreprocessingPipeline(spec)

        # direct: slice rows 64..128 in memory
        direct_raw = {}
        for column in spec.schema().columns():
            raw = data[column.name]
            if isinstance(raw, tuple):
                lengths, values = raw
                offsets = np.concatenate(([0], np.cumsum(lengths)))
                direct_raw[column.name] = (
                    lengths[64:128],
                    values[offsets[64] : offsets[128]],
                )
            else:
                direct_raw[column.name] = raw[64:128]
        direct_batch, _ = pipe.run(direct_raw)

        # via storage: read partition 1 back off its device
        stored_bytes = storage.read_partition("rm1", 1)
        reader = ColumnarFileReader(stored_bytes)
        stored_raw = reader.read_columns(pipe.required_columns())
        stored_batch, _ = pipe.run(stored_raw)

        np.testing.assert_array_equal(direct_batch.dense, stored_batch.dense)
        np.testing.assert_array_equal(
            direct_batch.sparse.values, stored_batch.sparse.values
        )
        np.testing.assert_array_equal(direct_batch.labels, stored_batch.labels)

    def test_every_partition_preprocessable_locally(self, pipeline_world):
        """Each SmartSSD can produce train-ready tensors for exactly the
        partitions it stores (PreSto's locality argument)."""
        spec, _, partitions, storage, devices = pipeline_world
        for part in partitions:
            device = storage.device_of("rm1", part.index)
            worker = IspPreprocessingWorker(spec, device=device)
            batch, counts = worker.preprocess_local("rm1", part.index, storage)
            assert batch.batch_size == part.num_rows
            assert counts.rows == part.num_rows
            batch.validate_index_range(worker.pipeline.table_sizes)

    def test_cpu_and_isp_agree_on_all_partitions(self, pipeline_world):
        spec, _, partitions, storage, _ = pipeline_world
        cpu = CpuPreprocessingWorker(spec)
        isp = IspPreprocessingWorker(spec)
        for part in partitions:
            raw = storage.read_partition("rm1", part.index)
            a, _ = cpu.preprocess_partition(raw, part.index)
            b, _ = isp.preprocess_partition(raw, part.index)
            np.testing.assert_array_equal(a.dense, b.dense)
            np.testing.assert_array_equal(a.sparse.values, b.sparse.values)


class TestBatchContents:
    def test_hashed_ids_depend_on_raw_ids(self, pipeline_world):
        """SigridHash must propagate raw id differences into the indices."""
        spec, _, _, storage, _ = pipeline_world
        pipe = PreprocessingPipeline(spec)
        raw0 = ColumnarFileReader(storage.read_partition("rm1", 0)).read_columns(
            pipe.required_columns()
        )
        raw1 = ColumnarFileReader(storage.read_partition("rm1", 1)).read_columns(
            pipe.required_columns()
        )
        batch0, _ = pipe.run(raw0)
        batch1, _ = pipe.run(raw1)
        assert not np.array_equal(batch0.sparse.values, batch1.sparse.values)

    def test_bucketized_features_bounded_by_buckets(self, pipeline_world):
        spec, _, _, storage, _ = pipeline_world
        pipe = PreprocessingPipeline(spec)
        raw = ColumnarFileReader(storage.read_partition("rm1", 0)).read_columns(
            pipe.required_columns()
        )
        batch, _ = pipe.run(raw)
        for name in spec.generated_sparse_names:
            _, values = batch.sparse.jagged_for(name)
            assert values.max() <= spec.bucket_size
            assert values.min() >= 0

    def test_dense_no_nans_after_pipeline(self, pipeline_world):
        spec, _, _, storage, _ = pipeline_world
        pipe = PreprocessingPipeline(spec)
        raw = ColumnarFileReader(storage.read_partition("rm1", 2)).read_columns(
            pipe.required_columns()
        )
        batch, _ = pipe.run(raw)
        assert not np.any(np.isnan(batch.dense))


class TestProductionScaleSlice:
    """A thin slice of a production model through the full path."""

    def test_rm2_small_batch_roundtrip(self):
        spec = get_model("RM2")
        generator = SyntheticTableGenerator(spec, seed=7)
        data = generator.generate(32)
        partitioner = RowPartitioner(spec.schema(), rows_per_partition=32)
        (part,) = partitioner.partition_all(data)
        worker = CpuPreprocessingWorker(spec)
        batch, counts = worker.preprocess_partition(part.file_bytes)
        assert batch.dense.shape == (32, 504)
        assert batch.sparse.num_keys == 63
        batch.validate_index_range(worker.pipeline.table_sizes)
        assert counts.bucketize_elements == 32 * 21

"""Benchmark of the end-to-end discrete-event pipeline simulation.

Simulates the Figure 9 flow (provision via T/P, preprocess, train) for both
designs and verifies that the provisioned pipelines keep the GPUs busy —
the paper's system-level success criterion.
"""


from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.endtoend import EndToEndSimulation
from repro.core.isp_worker import IspPreprocessingWorker
from repro.features.specs import get_model

BATCHES = 200


def test_endtoend_presto_rm5(benchmark):
    """PreSto ISP units feeding 8 A100s on RM5."""
    spec = get_model("RM5")

    def run():
        sim = EndToEndSimulation(
            spec, lambda: IspPreprocessingWorker(spec), num_gpus=8
        )
        return sim.run(num_batches=BATCHES, provision_to_demand=True)

    stats = benchmark(run)
    print(
        f"\nPreSto RM5: {stats.num_workers} ISP units, "
        f"GPU util {stats.gpu_utilization:.2%}"
    )
    assert stats.num_workers == 9
    assert stats.gpu_utilization > 0.8


def test_endtoend_disagg_rm5(benchmark):
    """Disaggregated CPU pool feeding 8 A100s on RM5 (367 cores)."""
    spec = get_model("RM5")

    def run():
        sim = EndToEndSimulation(
            spec, lambda: CpuPreprocessingWorker(spec), num_gpus=8
        )
        return sim.run(num_batches=BATCHES, provision_to_demand=True)

    stats = benchmark(run)
    print(
        f"\nDisagg RM5: {stats.num_workers} cores, steady-state "
        f"GPU util {stats.steady_state_utilization:.2%}"
    )
    assert stats.num_workers == 367
    # the one-batch warmup (a full 2.8 s CPU batch latency) dominates short
    # runs, so assert the steady-state utilization the paper cares about
    assert stats.steady_state_utilization > 0.8


def test_endtoend_colocated_starves(benchmark):
    """The co-located 16-core budget starves the GPU (Figure 3's problem)."""
    spec = get_model("RM5")

    def run():
        sim = EndToEndSimulation(
            spec, lambda: CpuPreprocessingWorker(spec), num_gpus=1
        )
        return sim.run(num_batches=50, num_workers=16)

    stats = benchmark(run)
    print(f"\nCo-located RM5: GPU util {stats.gpu_utilization:.2%}")
    assert stats.gpu_utilization < 0.35

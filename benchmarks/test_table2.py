"""Benchmark: regenerate the paper's Table2 via repro.experiments.table2_resources."""

from conftest import assert_claims, report

from repro.experiments import table2_resources


def test_table2(benchmark):
    """Time the table2 experiment and verify its paper claims."""
    result = benchmark(table2_resources.run)
    report(result)
    assert_claims(result)

"""A100 training device model — the source of ``T``.

The train manager stress-tests the GPU with dummy mini-batches to find its
maximum sustainable training throughput ``T`` (Figure 9, step 2); this model
is that measurement.  One iteration's time is the slower of the compute
roofline and the embedding-gather memory roofline, plus per-iteration fixed
overheads and per-table kernel costs.  Throughput is then
``batch / iteration_time``, and an 8-GPU node sustains ``8 T`` (the paper's
node-level provisioning target in Figures 4 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.training.dlrm import DlrmCostModel


@dataclass(frozen=True)
class IterationBreakdown:
    """Where one training iteration's time goes."""

    compute: float
    embedding: float
    kernel_overhead: float
    fixed_overhead: float

    @property
    def total(self) -> float:
        """Iteration seconds: compute overlaps gathers; overheads serialize."""
        return max(self.compute, self.embedding) + self.kernel_overhead + self.fixed_overhead


class GpuTrainingModel:
    """Max training throughput of one A100 for a Table I model."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration

    def iteration_breakdown(
        self, spec: ModelSpec, batch_size: Optional[int] = None
    ) -> IterationBreakdown:
        """Per-iteration time components at ``batch_size``."""
        cal = self.cal
        rows = batch_size if batch_size is not None else spec.batch_size
        work = DlrmCostModel(spec).workload(cal.gpu_embedding_traffic_multiplier)
        compute = rows * work.training_flops / (
            cal.gpu_peak_flops * cal.gpu_flops_efficiency
        )
        embedding = rows * work.embedding_bytes / cal.gpu_gather_bw
        kernels = spec.num_tables * cal.gpu_kernel_overhead_per_table
        return IterationBreakdown(
            compute=compute,
            embedding=embedding,
            kernel_overhead=kernels,
            fixed_overhead=cal.gpu_iteration_overhead,
        )

    def max_training_throughput(
        self, spec: ModelSpec, batch_size: Optional[int] = None
    ) -> float:
        """``T``: samples/s one A100 sustains when never input-starved."""
        rows = batch_size if batch_size is not None else spec.batch_size
        return rows / self.iteration_breakdown(spec, rows).total

    def node_throughput(
        self, spec: ModelSpec, num_gpus: int = 8, batch_size: Optional[int] = None
    ) -> float:
        """Aggregate demand of a multi-GPU training node (data parallel)."""
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        return num_gpus * self.max_training_throughput(spec, batch_size)

    def utilization(
        self, spec: ModelSpec, preprocessing_throughput: float
    ) -> float:
        """GPU utilization when fed ``preprocessing_throughput`` samples/s:
        the fraction of time the GPU actually trains (Fig. 3, right axis)."""
        if preprocessing_throughput <= 0:
            return 0.0
        t_max = self.max_training_throughput(spec)
        return min(preprocessing_throughput / t_max, 1.0)

"""Figure 16 — PreSto vs alternative accelerated preprocessing.

Four single-device design points per model: a disaggregated A100 (NVTabular
style), a disaggregated U280, PreSto(U280) (the U280 inside the storage
node), and PreSto(SmartSSD).  Reports throughput (normalized to A100) and
performance/Watt.

Paper claims: PreSto(SmartSSD) ~2.5x faster than the A100; ~5% slower than
the disaggregated U280; the U280-disagg spends ~47.6% of its time moving
data; PreSto(SmartSSD) delivers ~2.9x the perf/W of PreSto(U280).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    build_system,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration

DESIGNS = ("A100", "U280", "PreSto (U280)", "PreSto (SmartSSD)")


@dataclass(frozen=True)
class Fig16Result(ExperimentResult):
    """Per-design throughput and perf/W for every model."""

    throughput: Dict[str, Dict[str, float]]  # model -> design -> samples/s
    perf_per_watt: Dict[str, Dict[str, float]]
    u280_data_movement_share: Dict[str, float]

    def ratio(self, model: str, a: str, b: str) -> float:
        """Throughput of design ``a`` over design ``b`` for one model."""
        return self.throughput[model][a] / self.throughput[model][b]

    def mean_ratio(self, a: str, b: str) -> float:
        values = [self.ratio(m, a, b) for m in self.throughput]
        return sum(values) / len(values)

    def mean_perf_watt_ratio(self, a: str, b: str) -> float:
        values = [
            self.perf_per_watt[m][a] / self.perf_per_watt[m][b]
            for m in self.perf_per_watt
        ]
        return sum(values) / len(values)

    def claims(self) -> List[PaperClaim]:
        movement = sum(self.u280_data_movement_share.values()) / len(
            self.u280_data_movement_share
        )
        return [
            PaperClaim(
                "PreSto(SmartSSD)/A100 throughput",
                2.5,
                self.mean_ratio("PreSto (SmartSSD)", "A100"),
                0.25,
            ),
            PaperClaim(
                "PreSto(SmartSSD)/U280 throughput (~0.95)",
                0.95,
                self.mean_ratio("PreSto (SmartSSD)", "U280"),
                0.15,
            ),
            PaperClaim(
                "PreSto(SmartSSD)/PreSto(U280) perf/W",
                2.9,
                self.mean_perf_watt_ratio("PreSto (SmartSSD)", "PreSto (U280)"),
                0.25,
            ),
            PaperClaim("U280-disagg data-movement share", 0.476, movement, 0.30),
        ]

    def rows(self) -> List[Tuple]:
        out = []
        for model in self.throughput:
            base = self.throughput[model]["A100"]
            base_pw = self.perf_per_watt[model]["A100"]
            for design in DESIGNS:
                out.append(
                    (
                        model,
                        design,
                        self.throughput[model][design] / base,
                        self.perf_per_watt[model][design] / base_pw,
                    )
                )
        return out

    def columns(self) -> List[str]:
        return ["model", "design", "throughput (vs A100)", "perf/W (vs A100)"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 16: alternative accelerated preprocessing",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig16", title="Figure 16", kind="figure", order=120)
def run(calibration: Calibration = CALIBRATION) -> Fig16Result:
    """Regenerate Figure 16."""
    throughput: Dict[str, Dict[str, float]] = {}
    perf_watt: Dict[str, Dict[str, float]] = {}
    movement: Dict[str, float] = {}
    for spec in models():
        # every design comes out of the registry; "PreSto (SmartSSD)" is a
        # registered alias of the canonical "PreSto" design point
        workers = {}
        for design in DESIGNS:
            worker = build_system(design, spec, calibration).make_worker()
            power = getattr(
                worker, "active_power", calibration.smartssd_active_power
            )
            workers[design] = (worker, power)
        throughput[spec.name] = {name: w.throughput() for name, (w, _) in workers.items()}
        perf_watt[spec.name] = {
            name: w.throughput() / power for name, (w, power) in workers.items()
        }
        movement[spec.name] = workers["U280"][0].data_movement_share()
    return Fig16Result(
        throughput=throughput,
        perf_per_watt=perf_watt,
        u280_data_movement_share=movement,
    )

"""Tests for the shard-parallel preprocessing executor and PreprocessJob."""

import numpy as np
import pytest

from repro.api import PreprocessJob, minibatch_digest
from repro.errors import ConfigurationError, ExecutionError
from repro.exec import ShardExecutor, ShardRunStats, run_preprocessing
from repro.features.specs import get_model
from repro.features.synthetic import SyntheticTableGenerator
from repro.ops.pipeline import PreprocessingPipeline

NUM_ROWS = 96


@pytest.fixture(scope="module")
def pipeline():
    return PreprocessingPipeline(get_model("RM1"))


@pytest.fixture(scope="module")
def raw_table():
    return SyntheticTableGenerator(get_model("RM1"), seed=3).generate(NUM_ROWS)


def serial_reference(pipeline, data, num_shards):
    """The plain serial pipeline the executor must match batch-for-batch."""
    executor = ShardExecutor.for_shards(pipeline, num_shards, NUM_ROWS)
    results = executor.run(data, parallel=False)
    return [r.batch for r in results]


class TestShardExecutor:
    @pytest.mark.parametrize("num_shards", [1, 2, 8])
    def test_parallel_equals_serial_batch_for_batch(
        self, pipeline, raw_table, num_shards
    ):
        executor = ShardExecutor.for_shards(
            pipeline, num_shards, NUM_ROWS, processes=2
        )
        serial = executor.run(raw_table, parallel=False)
        parallel = executor.run(raw_table, parallel=True)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.index == b.index
            assert a.batch.batch_id == b.batch.batch_id
            np.testing.assert_array_equal(a.batch.dense, b.batch.dense)
            np.testing.assert_array_equal(a.batch.labels, b.batch.labels)
            np.testing.assert_array_equal(
                a.batch.sparse.lengths, b.batch.sparse.lengths
            )
            np.testing.assert_array_equal(
                a.batch.sparse.values, b.batch.sparse.values
            )
            assert a.batch.sparse.keys == b.batch.sparse.keys
        assert minibatch_digest([r.batch for r in serial]) == minibatch_digest(
            [r.batch for r in parallel]
        )

    def test_shard_count_larger_than_row_count(self, pipeline):
        data = SyntheticTableGenerator(get_model("RM1"), seed=5).generate(3)
        executor = ShardExecutor.for_shards(pipeline, 8, 3, processes=2)
        serial = executor.run(data, parallel=False)
        parallel = executor.run(data, parallel=True)
        assert len(serial) == 3  # one single-row shard per row, none empty
        assert [r.counts.rows for r in serial] == [1, 1, 1]
        assert minibatch_digest([r.batch for r in serial]) == minibatch_digest(
            [r.batch for r in parallel]
        )

    def test_batches_cover_all_rows_in_order(self, pipeline, raw_table):
        executor = ShardExecutor.for_shards(pipeline, 4, NUM_ROWS)
        results = executor.run(raw_table, parallel=False)
        assert [r.index for r in results] == list(range(len(results)))
        assert sum(r.counts.rows for r in results) == NUM_ROWS
        # shard 0's labels are the table's first rows
        np.testing.assert_array_equal(
            results[0].batch.labels.astype(np.int8),
            np.asarray(raw_table["label"][: results[0].counts.rows]),
        )

    def test_sharded_equals_unsharded_content(self, pipeline, raw_table):
        # one big batch vs 4 shards: same rows, same per-row transforms
        whole = pipeline.run(raw_table, batch_id=0)[0]
        shards = serial_reference(pipeline, raw_table, 4)
        stacked_dense = np.vstack([b.dense for b in shards])
        np.testing.assert_array_equal(stacked_dense, whole.dense)
        stacked_labels = np.concatenate([b.labels for b in shards])
        np.testing.assert_array_equal(stacked_labels, whole.labels)

    def test_iter_shards_streams_in_order(self, pipeline, raw_table):
        executor = ShardExecutor.for_shards(pipeline, 4, NUM_ROWS)
        streamed = list(executor.iter_shards(raw_table))
        materialized = executor.run(raw_table, parallel=False)
        assert [r.index for r in streamed] == [r.index for r in materialized]
        assert minibatch_digest(
            [r.batch for r in streamed]
        ) == minibatch_digest([r.batch for r in materialized])

    def test_stats_aggregate(self, pipeline, raw_table):
        results, stats = run_preprocessing(
            pipeline, raw_table, num_shards=4, parallel=False
        )
        assert stats == ShardRunStats.from_results(results)
        assert stats.num_shards == len(results)
        assert stats.num_rows == NUM_ROWS
        assert stats.bytes_read <= stats.file_bytes
        assert stats.transform_elements > 0

    def test_invalid_configuration(self, pipeline):
        with pytest.raises(ExecutionError, match="rows_per_shard"):
            ShardExecutor(pipeline, rows_per_shard=0)
        with pytest.raises(ExecutionError, match="processes"):
            ShardExecutor(pipeline, processes=0)
        with pytest.raises(ExecutionError, match="num_shards"):
            ShardExecutor.for_shards(pipeline, 0, 10)
        with pytest.raises(ExecutionError, match="num_rows"):
            ShardExecutor.for_shards(pipeline, 2, 0)


class TestPreprocessJob:
    def test_round_trip(self):
        job = PreprocessJob(model="rm2", num_rows=100, num_shards=3, seed=7)
        assert job.model == "RM2"  # canonicalized
        clone = PreprocessJob.from_dict(job.to_dict())
        assert clone == job

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown preprocess"):
            PreprocessJob.from_dict({"model": "RM1", "gpus": 4})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PreprocessJob(model="RM1", num_rows=0)
        with pytest.raises(ConfigurationError):
            PreprocessJob(model="RM1", num_shards=-1)
        with pytest.raises(ConfigurationError):
            PreprocessJob(model="nope")

    def test_run_digest_is_deterministic(self):
        job = PreprocessJob(model="RM1", num_rows=64, num_shards=4)
        first = job.run(parallel=False)
        second = job.run(parallel=False)
        assert first.digest == second.digest
        assert first.stats.num_shards == 4
        assert "RM1" in first.summary()

    def test_different_seed_changes_digest(self):
        base = PreprocessJob(model="RM1", num_rows=64, num_shards=2)
        other = PreprocessJob(model="RM1", num_rows=64, num_shards=2, seed=9)
        assert base.run(parallel=False).digest != other.run(
            parallel=False
        ).digest

    def test_shard_count_does_not_change_content(self):
        # the acceptance property at the API level: N shards, same bytes
        one = PreprocessJob(model="RM1", num_rows=64, num_shards=1)
        many = PreprocessJob(model="RM1", num_rows=64, num_shards=8)
        batches_one = one.run(parallel=False).batches
        batches_many = many.run(parallel=False).batches
        np.testing.assert_array_equal(
            np.vstack([b.dense for b in batches_many]), batches_one[0].dense
        )
        np.testing.assert_array_equal(
            np.concatenate([b.labels for b in batches_many]),
            batches_one[0].labels,
        )

"""Tests for the row-oriented file format (the overfetch strawman)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataio.columnar import ColumnarFileReader, write_table
from repro.dataio.rowformat import RowFileReader, RowFileWriter, write_row_table
from repro.dataio.schema import TableSchema
from repro.errors import FormatError, SchemaError
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table


def make_table(num_rows=40, seed=3):
    rng = np.random.default_rng(seed)
    schema = TableSchema.with_counts(3, 2)
    data = {"label": (rng.random(num_rows) < 0.5).astype(np.int8)}
    for name in schema.dense_names:
        column = rng.random(num_rows).astype(np.float32)
        column[rng.random(num_rows) < 0.1] = np.nan
        data[name] = column
    for name in schema.sparse_names:
        lengths = rng.integers(0, 4, num_rows).astype(np.int32)
        values = rng.integers(0, 1 << 40, int(lengths.sum())).astype(np.int64)
        data[name] = (lengths, values)
    return schema, data


class TestRoundTrip:
    def test_full_roundtrip(self):
        schema, data = make_table()
        reader = RowFileReader(write_row_table(schema, data))
        out = reader.read_columns(
            ["label"] + schema.dense_names + schema.sparse_names
        )
        np.testing.assert_array_equal(out["label"], data["label"])
        for name in schema.dense_names:
            np.testing.assert_array_equal(
                np.nan_to_num(out[name], nan=-1.0),
                np.nan_to_num(data[name], nan=-1.0),
            )
        for name in schema.sparse_names:
            np.testing.assert_array_equal(out[name][0], data[name][0])
            np.testing.assert_array_equal(out[name][1], data[name][1])

    def test_agrees_with_columnar(self):
        spec = get_model("RM1")
        data = generate_raw_table(spec, 64)
        schema = spec.schema()
        row_reader = RowFileReader(write_row_table(schema, data))
        col_reader = ColumnarFileReader(write_table(schema, data))
        wanted = ["label", "int_0", "cat_0"]
        row_out = row_reader.read_columns(wanted)
        col_out = col_reader.read_columns(wanted)
        np.testing.assert_array_equal(
            np.nan_to_num(row_out["int_0"]), np.nan_to_num(col_out["int_0"])
        )
        np.testing.assert_array_equal(row_out["cat_0"][1], col_out["cat_0"][1])


class TestVectorizedWriterMatchesScalar:
    """The batch writer must produce byte-identical files to the row loop."""

    @pytest.mark.parametrize(
        "num_rows,seed",
        [(0, 0), (1, 1), (2, 2), (17, 3), (64, 4), (200, 5)],
    )
    def test_byte_identical(self, num_rows, seed):
        schema, data = make_table(num_rows=num_rows, seed=seed)
        writer = RowFileWriter(schema)
        assert writer.write(data) == writer.write_scalar(data)

    def test_byte_identical_negative_ids(self):
        schema, data = make_table(num_rows=30, seed=6)
        name = schema.sparse_names[0]
        lengths, values = data[name]
        values = values.copy()
        values[::3] = -values[::3] - 1  # exercise the two's-complement mask
        data[name] = (lengths, values)
        writer = RowFileWriter(schema)
        buffer = writer.write(data)
        assert buffer == writer.write_scalar(data)
        out = RowFileReader(buffer).read_columns([name])
        np.testing.assert_array_equal(out[name][1], values)

    def test_byte_identical_empty_sparse_rows(self):
        schema = TableSchema.with_counts(1, 1)
        num_rows = 8
        data = {
            "label": np.ones(num_rows, dtype=np.int8),
            schema.dense_names[0]: np.zeros(num_rows, dtype=np.float32),
            schema.sparse_names[0]: (
                np.zeros(num_rows, dtype=np.int32),
                np.empty(0, dtype=np.int64),
            ),
        }
        writer = RowFileWriter(schema)
        buffer = writer.write(data)
        assert buffer == writer.write_scalar(data)
        out = RowFileReader(buffer).read_columns(schema.sparse_names)
        assert out[schema.sparse_names[0]][1].size == 0

    def test_byte_identical_large_ids(self):
        schema = TableSchema.with_counts(0, 1)
        data = {
            "label": np.zeros(3, dtype=np.int8),
            schema.sparse_names[0]: (
                np.array([1, 1, 1], dtype=np.int32),
                np.array(
                    [np.iinfo(np.int64).max, np.iinfo(np.int64).min, 0],
                    dtype=np.int64,
                ),
            ),
        }
        writer = RowFileWriter(schema)
        buffer = writer.write(data)
        assert buffer == writer.write_scalar(data)
        out = RowFileReader(buffer).read_columns(schema.sparse_names)
        np.testing.assert_array_equal(
            out[schema.sparse_names[0]][1], data[schema.sparse_names[0]][1]
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_byte_identical_property(self, seed, num_rows):
        schema, data = make_table(num_rows=num_rows, seed=seed)
        writer = RowFileWriter(schema)
        assert writer.write(data) == writer.write_scalar(data)

    def test_roundtrip_after_rewrite(self):
        # full read-back through the vectorized reader stays lossless
        schema, data = make_table(num_rows=33, seed=9)
        reader = RowFileReader(write_row_table(schema, data))
        out = reader.read_columns(
            ["label"] + schema.dense_names + schema.sparse_names
        )
        np.testing.assert_array_equal(out["label"], data["label"])
        for name in schema.dense_names:
            np.testing.assert_array_equal(
                np.nan_to_num(out[name], nan=-1.0),
                np.nan_to_num(data[name], nan=-1.0),
            )
        for name in schema.sparse_names:
            np.testing.assert_array_equal(out[name][0], data[name][0])
            np.testing.assert_array_equal(out[name][1], data[name][1])


class TestOverfetch:
    def test_scan_cost_independent_of_subset(self):
        schema, data = make_table()
        buf = write_row_table(schema, data)
        one = RowFileReader(buf)
        one.read_columns(["int_0"])
        everything = RowFileReader(buf)
        everything.read_columns(
            ["label"] + schema.dense_names + schema.sparse_names
        )
        assert one.bytes_scanned == everything.bytes_scanned

    def test_columnar_beats_row_for_subsets(self):
        spec = get_model("RM1")
        data = generate_raw_table(spec, 128)
        schema = spec.schema()
        row = RowFileReader(write_row_table(schema, data))
        col = ColumnarFileReader(write_table(schema, data))
        row.read_columns(["int_0"])
        col.read_columns(["int_0"])
        assert col.bytes_read < row.bytes_scanned / 10


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(FormatError, match="row-format"):
            RowFileReader(b"nope" * 20)

    def test_unknown_column(self):
        schema, data = make_table()
        reader = RowFileReader(write_row_table(schema, data))
        with pytest.raises(FormatError, match="unknown columns"):
            reader.read_columns(["ghost"])

    def test_missing_column_on_write(self):
        schema, data = make_table()
        del data["int_1"]
        with pytest.raises(SchemaError, match="int_1"):
            write_row_table(schema, data)

    def test_num_rows_in_footer(self):
        schema, data = make_table(num_rows=17)
        assert RowFileReader(write_row_table(schema, data)).num_rows == 17


class TestCorruptFiles:
    def test_corrupt_huge_length_prefix_raises_format_error(self):
        # corrupt a sparse length prefix to a 2^63 varint: the reader must
        # fail with a ReproError, not an uncaught OverflowError
        schema = TableSchema.with_counts(0, 1)
        data = {
            "label": np.zeros(1, dtype=np.int8),
            schema.sparse_names[0]: (
                np.array([1], dtype=np.int32),
                np.array([3], dtype=np.int64),
            ),
        }
        buffer = bytearray(write_row_table(schema, data))
        # record layout: magic(6) + label(1) + length varint + id varint
        offset = len(b"PRSTR\n") + 1
        huge = bytearray()
        value = 2**63
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                huge.append(byte | 0x80)
            else:
                huge.append(byte)
                break
        corrupted = buffer[:offset] + huge + buffer[offset + 1 :]
        reader = RowFileReader(bytes(corrupted))
        with pytest.raises(FormatError):
            reader.read_columns(schema.sparse_names)


class TestBatchedScanMatchesScalar:
    """The batched record scan must reproduce the scalar walk's geometry."""

    @staticmethod
    def _geometry(reader, method):
        import numpy as np

        body = np.frombuffer(reader._buf, dtype=np.uint8, count=reader._body_end)
        terminators = np.flatnonzero(body < 0x80)
        return method(body, terminators)

    def _assert_scan_equal(self, buffer, force_batch=True, monkeypatch=None):
        from repro.dataio import rowformat as rf

        if force_batch and monkeypatch is not None:
            monkeypatch.setattr(rf, "_MIN_BATCH_SCAN_ROWS", 0)
        reader = RowFileReader(buffer)
        fast = self._geometry(reader, reader._scan_records)
        slow = self._geometry(reader, reader._scan_records_scalar)
        for a, b in zip(fast, slow):
            np.testing.assert_array_equal(a, b)

    def test_large_table_uses_batch_path(self):
        schema, data = make_table(num_rows=300, seed=11)
        reader = RowFileReader(write_row_table(schema, data))
        body = np.frombuffer(reader._buf, dtype=np.uint8, count=reader._body_end)
        terminators = np.flatnonzero(body < 0x80)
        batch = reader._scan_records_batch(body, terminators)
        assert batch is not None  # the fast path proved this file
        scalar = reader._scan_records_scalar(body, terminators)
        for a, b in zip(batch, scalar):
            np.testing.assert_array_equal(a, b)

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 120))
    @settings(max_examples=40, deadline=None)
    def test_property_random_tables(self, seed, num_rows):
        from repro.dataio import rowformat as rf

        schema, data = make_table(num_rows=num_rows, seed=seed)
        buffer = write_row_table(schema, data)
        original = rf._MIN_BATCH_SCAN_ROWS
        rf._MIN_BATCH_SCAN_ROWS = 0
        try:
            self._assert_scan_equal(buffer, force_batch=False)
        finally:
            rf._MIN_BATCH_SCAN_ROWS = original

    def test_empty_sparse_rows(self, monkeypatch):
        schema = TableSchema.with_counts(2, 2)
        num_rows = 96
        data = {
            "label": np.zeros(num_rows, dtype=np.int8),
            schema.dense_names[0]: np.zeros(num_rows, dtype=np.float32),
            schema.dense_names[1]: np.full(num_rows, np.nan, dtype=np.float32),
            schema.sparse_names[0]: (
                np.zeros(num_rows, dtype=np.int32),
                np.empty(0, dtype=np.int64),
            ),
            schema.sparse_names[1]: (
                np.ones(num_rows, dtype=np.int32),
                np.arange(num_rows, dtype=np.int64),
            ),
        }
        self._assert_scan_equal(
            write_row_table(schema, data), monkeypatch=monkeypatch
        )

    def test_max_width_varints(self, monkeypatch):
        # int64 extremes encode as 10-byte varints (two's complement)
        schema = TableSchema.with_counts(1, 1)
        num_rows = 80
        rng = np.random.default_rng(5)
        lengths = rng.integers(0, 3, num_rows).astype(np.int32)
        values = np.full(int(lengths.sum()), np.iinfo(np.int64).min)
        values[::2] = np.iinfo(np.int64).max
        data = {
            "label": np.ones(num_rows, dtype=np.int8),
            schema.dense_names[0]: rng.random(num_rows).astype(np.float32),
            schema.sparse_names[0]: (lengths, values),
        }
        buffer = write_row_table(schema, data)
        self._assert_scan_equal(buffer, monkeypatch=monkeypatch)
        out = RowFileReader(buffer).read_columns(schema.sparse_names)
        np.testing.assert_array_equal(out[schema.sparse_names[0]][1], values)

    def test_multibyte_list_lengths_fall_back_correctly(self):
        # a 200-id row forces a 2-byte length varint: the fast path must
        # decline and the public scan still answer via the scalar walk
        schema = TableSchema.with_counts(1, 1)
        num_rows = 80
        rng = np.random.default_rng(6)
        lengths = np.full(num_rows, 1, dtype=np.int32)
        lengths[40] = 200
        values = rng.integers(0, 1 << 40, int(lengths.sum())).astype(np.int64)
        data = {
            "label": np.zeros(num_rows, dtype=np.int8),
            schema.dense_names[0]: rng.random(num_rows).astype(np.float32),
            schema.sparse_names[0]: (lengths, values),
        }
        buffer = write_row_table(schema, data)
        reader = RowFileReader(buffer)
        body = np.frombuffer(reader._buf, dtype=np.uint8, count=reader._body_end)
        terminators = np.flatnonzero(body < 0x80)
        assert reader._scan_records_batch(body, terminators) is None
        self._assert_scan_equal(buffer, force_batch=False)
        out = RowFileReader(buffer).read_columns(schema.sparse_names)
        np.testing.assert_array_equal(out[schema.sparse_names[0]][0], lengths)
        np.testing.assert_array_equal(out[schema.sparse_names[0]][1], values)

    def test_no_sparse_columns(self, monkeypatch):
        schema = TableSchema.with_counts(3, 0)
        num_rows = 70
        rng = np.random.default_rng(7)
        data = {"label": np.ones(num_rows, dtype=np.int8)}
        for name in schema.dense_names:
            data[name] = rng.random(num_rows).astype(np.float32)
        self._assert_scan_equal(
            write_row_table(schema, data), monkeypatch=monkeypatch
        )

    def test_truncated_file_raises_format_error(self):
        schema, data = make_table(num_rows=100, seed=9)
        buffer = write_row_table(schema, data)
        with pytest.raises(FormatError):
            RowFileReader(buffer[: len(buffer) - 40])

    def test_corrupt_id_terminator_raises_format_error(self):
        schema, data = make_table(num_rows=100, seed=10)
        buffer = bytearray(write_row_table(schema, data))
        reader = RowFileReader(bytes(buffer))
        body = np.frombuffer(
            reader._buf, dtype=np.uint8, count=reader._body_end
        )
        terminators = np.flatnonzero(body < 0x80)
        _, counts, id_term_index = reader._scan_records_scalar(
            body, terminators
        )
        # merge a mid-file id varint into its successor by setting the
        # continuation bit on its terminator: one varint vanishes, so the
        # record walk can no longer align with the footer
        row = 50
        col = int(np.argmax(counts[row] > 0))
        assert counts[row, col] > 0
        position = int(terminators[id_term_index[row, col]])
        buffer[position] |= 0x80
        corrupted = RowFileReader(bytes(buffer))
        with pytest.raises(FormatError):
            corrupted.read_columns(schema.sparse_names)

"""Tests for the full preprocessing pipeline and its work counters."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.features.specs import get_model
from repro.features.synthetic import SyntheticTableGenerator, generate_raw_table
from repro.ops.pipeline import OpCounts, PreprocessingPipeline


@pytest.fixture(scope="module")
def rm1():
    spec = get_model("RM1")
    return spec, PreprocessingPipeline(spec), generate_raw_table(spec, 128)


class TestPipelineRun:
    def test_output_shapes(self, rm1):
        spec, pipe, raw = rm1
        batch, counts = pipe.run(raw)
        assert batch.dense.shape == (128, spec.num_dense)
        assert batch.sparse.num_keys == spec.num_tables  # 26 raw + 13 generated
        assert len(batch.labels) == 128

    def test_indices_within_tables(self, rm1):
        _, pipe, raw = rm1
        batch, _ = pipe.run(raw)
        batch.validate_index_range(pipe.table_sizes)

    def test_generated_feature_tables_sized_by_buckets(self, rm1):
        spec, pipe, _ = rm1
        for name in spec.generated_sparse_names:
            assert pipe.table_sizes[name] == spec.bucket_size + 1
        for name in spec.schema().sparse_names:
            assert pipe.table_sizes[name] == spec.avg_embeddings_per_table

    def test_deterministic(self, rm1):
        _, pipe, raw = rm1
        a, _ = pipe.run(raw)
        b, _ = pipe.run(raw)
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.sparse.values, b.sparse.values)

    def test_dense_normalized_nonnegative(self, rm1):
        _, pipe, raw = rm1
        batch, _ = pipe.run(raw)
        assert np.all(batch.dense >= 0)
        assert np.all(np.isfinite(batch.dense))

    def test_missing_column_raises(self, rm1):
        _, pipe, raw = rm1
        broken = dict(raw)
        del broken["int_0"]
        with pytest.raises(PipelineError, match="int_0"):
            pipe.run(broken)

    def test_required_columns(self, rm1):
        spec, pipe, _ = rm1
        cols = pipe.required_columns()
        assert cols[0] == "label"
        assert len(cols) == 1 + spec.num_dense + spec.num_sparse


class TestOpCounts:
    def test_measured_matches_expected_rm1(self, rm1):
        spec, pipe, raw = rm1
        _, measured = pipe.run(raw)
        expected = OpCounts.expected_for(spec, 128)
        assert measured.log_elements == expected.log_elements
        assert measured.bucketize_elements == expected.bucketize_elements
        assert measured.bucket_boundaries == expected.bucket_boundaries
        # RM1 sparse length is fixed at 1, so hash counts match exactly
        assert measured.hash_elements == expected.hash_elements

    def test_expected_counts_production_model(self):
        spec = get_model("RM5")
        counts = OpCounts.expected_for(spec)
        assert counts.rows == 8192
        assert counts.log_elements == 8192 * 504
        assert counts.bucketize_elements == 8192 * 42
        assert counts.hash_elements == 8192 * 42 * 20
        assert counts.bucket_boundaries == 4096

    def test_search_steps(self):
        assert OpCounts.expected_for(get_model("RM5")).search_steps_per_element == 13
        assert OpCounts.expected_for(get_model("RM1")).search_steps_per_element == 11

    def test_transform_elements_sum(self):
        counts = OpCounts.expected_for(get_model("RM2"))
        assert counts.transform_elements == (
            counts.log_elements + counts.bucketize_elements + counts.hash_elements
        )

    def test_measured_hash_close_to_expected_jagged(self):
        """For jagged models the measured hash count fluctuates around the
        Poisson mean (plus fills for empty rows)."""
        spec = get_model("RM2")
        pipe = PreprocessingPipeline(spec)
        raw = generate_raw_table(spec, 64)
        _, measured = pipe.run(raw)
        expected = OpCounts.expected_for(spec, 64)
        assert measured.hash_elements == pytest.approx(
            expected.hash_elements, rel=0.10
        )


class TestPipelineConstruction:
    def test_wrong_boundary_count_rejected(self):
        spec = get_model("RM1")
        gen = SyntheticTableGenerator(spec)
        boundaries = {
            name: gen.bucket_boundaries(name)[:-1]  # one edge short
            for name in spec.bucketize_source_names
        }
        with pytest.raises(PipelineError, match="bucket size"):
            PreprocessingPipeline(spec, boundaries=boundaries)

    def test_missing_boundaries_rejected(self):
        spec = get_model("RM1")
        with pytest.raises(PipelineError, match="missing bucket boundaries"):
            PreprocessingPipeline(spec, boundaries={})


class TestPreparedKernels:
    """The cached per-pipeline op kernels must match the one-shot functions."""

    def test_bucketizer_matches_function(self):
        from repro.ops.bucketize import Bucketizer, bucketize

        rng = np.random.default_rng(0)
        boundaries = np.sort(rng.random(64))
        values = rng.random(500)
        values[::7] = np.nan
        prepared = Bucketizer(boundaries)
        np.testing.assert_array_equal(
            prepared(values), bucketize(values, boundaries)
        )
        assert prepared.num_buckets == 65

    def test_bucketizer_validates_once(self):
        from repro.errors import OpError
        from repro.ops.bucketize import Bucketizer

        with pytest.raises(OpError, match="strictly increasing"):
            Bucketizer(np.array([1.0, 1.0, 2.0]))
        with pytest.raises(OpError, match="1-D"):
            Bucketizer(np.array([1.0, 2.0]))(np.zeros((2, 2)))

    def test_sigrid_hasher_matches_function(self):
        from repro.ops.sigridhash import SigridHasher, sigrid_hash

        rng = np.random.default_rng(1)
        ids = rng.integers(-(2**40), 2**40, 1000)
        prepared = SigridHasher(0xC0FFEE, 500_000)
        np.testing.assert_array_equal(
            prepared(ids), sigrid_hash(ids, 0xC0FFEE, 500_000)
        )

    def test_sigrid_hasher_validates(self):
        from repro.errors import OpError
        from repro.ops.sigridhash import SigridHasher

        with pytest.raises(OpError, match="positive"):
            SigridHasher(0, 0)
        with pytest.raises(OpError, match="integer"):
            SigridHasher(0, 10)(np.array([1.5, 2.5]))

    def test_pipeline_uses_prepared_kernels(self, rm1):
        _, pipe, _ = rm1
        assert set(pipe._bucketizers) == set(pipe.spec.bucketize_source_names)
        assert set(pipe._hashers) == set(pipe.schema.sparse_names)


class TestRunMany:
    def test_matches_sequential_runs(self, rm1):
        spec, pipe, _ = rm1
        gen = SyntheticTableGenerator(spec, seed=11)
        shards = [gen.generate(32, partition=p) for p in range(3)]
        fused = pipe.run_many(shards)
        assert len(fused) == 3
        for index, (raw, (batch, counts)) in enumerate(zip(shards, fused)):
            single_batch, single_counts = pipe.run(raw, batch_id=index)
            assert batch.batch_id == index
            assert counts == single_counts
            np.testing.assert_array_equal(batch.dense, single_batch.dense)
            np.testing.assert_array_equal(
                batch.sparse.values, single_batch.sparse.values
            )

    def test_start_batch_id(self, rm1):
        spec, pipe, _ = rm1
        gen = SyntheticTableGenerator(spec, seed=12)
        shards = [gen.generate(16, partition=p) for p in range(2)]
        fused = pipe.run_many(shards, start_batch_id=7)
        assert [batch.batch_id for batch, _ in fused] == [7, 8]

    def test_empty_iterable(self, rm1):
        _, pipe, _ = rm1
        assert pipe.run_many([]) == []

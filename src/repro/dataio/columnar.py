"""A self-contained columnar file format (the reproduction's "Parquet").

File layout::

    +--------+----------------------+----------------------+-----+--------+
    | magic  | row group 0 chunks   | row group 1 chunks   | ... | footer |
    +--------+----------------------+----------------------+-----+--------+

* Column data is stored one *chunk* per (row group, column part); dense and
  label columns have a single ``values`` part, sparse columns have a
  ``lengths`` part (int32, one per row) and a ``values`` part (int64 ids).
* Each chunk is framed and CRC-protected by :mod:`repro.dataio.encoding`.
* The footer is a JSON document describing the schema and every chunk's
  (offset, size), followed by its byte length and the trailing magic, so a
  reader can locate and decode any column *selectively* — the property the
  paper's Extract phase depends on (Section II-B).

In-memory column data is exchanged as a dict:

* dense/label column -> 1-D ``np.ndarray``
* sparse column      -> ``(lengths, values)`` tuple of 1-D arrays
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dataio import encoding as enc
from repro.dataio.schema import ColumnKind, TableSchema
from repro.errors import FormatError, SchemaError

MAGIC = b"PRST1\n"
_FOOTER_LEN = struct.Struct("<I")

ColumnData = Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]
TableData = Dict[str, ColumnData]

#: part names inside a row group
PART_VALUES = "values"
PART_LENGTHS = "lengths"


@dataclass(frozen=True)
class ColumnChunk:
    """Footer entry locating one encoded chunk inside the file."""

    column: str
    part: str
    row_group: int
    offset: int
    size: int
    num_values: int
    encoding: enc.Encoding

    def to_json(self) -> dict:
        return {
            "column": self.column,
            "part": self.part,
            "row_group": self.row_group,
            "offset": self.offset,
            "size": self.size,
            "num_values": self.num_values,
            "encoding": int(self.encoding),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ColumnChunk":
        return cls(
            column=obj["column"],
            part=obj["part"],
            row_group=obj["row_group"],
            offset=obj["offset"],
            size=obj["size"],
            num_values=obj["num_values"],
            encoding=enc.Encoding(obj["encoding"]),
        )


@dataclass
class FileFooter:
    """Decoded footer: schema description, row counts, and chunk index."""

    dense_names: List[str]
    sparse_names: List[str]
    label_name: str
    num_rows: int
    row_group_rows: List[int]
    chunks: List[ColumnChunk]

    def chunks_for(self, column: str, part: Optional[str] = None) -> List[ColumnChunk]:
        """All chunks of ``column`` (optionally one part), in row-group order."""
        found = [
            c
            for c in self.chunks
            if c.column == column and (part is None or c.part == part)
        ]
        found.sort(key=lambda c: (c.row_group, c.part))
        return found

    def column_bytes(self, column: str) -> int:
        """Total encoded bytes of one column across all row groups."""
        return sum(c.size for c in self.chunks_for(column))

    def to_json(self) -> dict:
        return {
            "dense": self.dense_names,
            "sparse": self.sparse_names,
            "label": self.label_name,
            "num_rows": self.num_rows,
            "row_group_rows": self.row_group_rows,
            "chunks": [c.to_json() for c in self.chunks],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "FileFooter":
        return cls(
            dense_names=list(obj["dense"]),
            sparse_names=list(obj["sparse"]),
            label_name=obj["label"],
            num_rows=obj["num_rows"],
            row_group_rows=list(obj["row_group_rows"]),
            chunks=[ColumnChunk.from_json(c) for c in obj["chunks"]],
        )


def default_encoding_policy(kind: ColumnKind, part: str, values: np.ndarray) -> enc.Encoding:
    """Fast static codec choice, mirroring Parquet defaults for this data.

    Labels are long runs of 0/1 -> RLE; sparse lengths and ids are
    small-magnitude integers -> varint; dense floats are PLAIN.
    """
    if kind is ColumnKind.LABEL:
        return enc.Encoding.RLE
    if kind is ColumnKind.DENSE:
        return enc.Encoding.PLAIN
    # sparse lengths and values
    return enc.Encoding.VARINT


class ColumnarFileWriter:
    """Serializes a table (dict of columns) into the columnar format."""

    def __init__(
        self,
        schema: TableSchema,
        row_group_size: int = 8192,
        encoding_policy=default_encoding_policy,
    ) -> None:
        if row_group_size <= 0:
            raise FormatError("row_group_size must be positive")
        self.schema = schema
        self.row_group_size = row_group_size
        self.encoding_policy = encoding_policy

    # -- helpers ----------------------------------------------------------

    def _validate(self, data: TableData, num_rows: int) -> None:
        for column in self.schema.columns():
            if column.name not in data:
                raise SchemaError(f"missing column {column.name!r} in table data")
            if column.kind is ColumnKind.SPARSE:
                lengths, values = data[column.name]
                column.validate_values(lengths, values, num_rows)
            else:
                column.validate_values(data[column.name], num_rows)

    @staticmethod
    def _infer_num_rows(schema: TableSchema, data: TableData) -> int:
        label = data.get(schema.label.name)
        if label is None:
            raise SchemaError(f"missing label column {schema.label.name!r}")
        return len(label)

    def _slice_column(
        self, kind: ColumnKind, column: ColumnData, start: int, stop: int
    ) -> Dict[str, np.ndarray]:
        """Return {part: array} for rows [start, stop) of one column."""
        if kind is ColumnKind.SPARSE:
            lengths, values = column
            offsets = np.concatenate(([0], np.cumsum(lengths)))
            return {
                PART_LENGTHS: lengths[start:stop].astype(np.int32),
                PART_VALUES: values[offsets[start] : offsets[stop]].astype(np.int64),
            }
        return {PART_VALUES: np.asarray(column)[start:stop]}

    # -- public API ---------------------------------------------------------

    def write(self, data: TableData) -> bytes:
        """Serialize the full table and return the file bytes."""
        num_rows = self._infer_num_rows(self.schema, data)
        self._validate(data, num_rows)

        body = bytearray(MAGIC)
        chunks: List[ColumnChunk] = []
        row_group_rows: List[int] = []
        group = 0
        for start in range(0, max(num_rows, 1), self.row_group_size):
            stop = min(start + self.row_group_size, num_rows)
            if stop <= start and num_rows > 0:
                break
            row_group_rows.append(stop - start)
            for column in self.schema.columns():
                parts = self._slice_column(
                    column.kind, data[column.name], start, stop
                )
                for part, values in sorted(parts.items()):
                    codec = self.encoding_policy(column.kind, part, values)
                    chunk_bytes = enc.encode_column(values, codec)
                    chunks.append(
                        ColumnChunk(
                            column=column.name,
                            part=part,
                            row_group=group,
                            offset=len(body),
                            size=len(chunk_bytes),
                            num_values=len(values),
                            encoding=codec,
                        )
                    )
                    body += chunk_bytes
            group += 1
            if num_rows == 0:
                break

        footer = FileFooter(
            dense_names=self.schema.dense_names,
            sparse_names=self.schema.sparse_names,
            label_name=self.schema.label.name,
            num_rows=num_rows,
            row_group_rows=row_group_rows,
            chunks=chunks,
        )
        footer_bytes = json.dumps(footer.to_json(), separators=(",", ":")).encode()
        body += footer_bytes
        body += _FOOTER_LEN.pack(len(footer_bytes))
        body += MAGIC
        return bytes(body)


class ColumnarFileReader:
    """Random-access reader over a columnar file held in memory.

    Tracks ``bytes_read`` across calls so the performance layer can charge
    I/O for exactly the chunks a pipeline touched (selective column reads).
    """

    def __init__(self, buffer: bytes) -> None:
        self._buf = buffer
        self.bytes_read = 0
        self.footer = self._parse_footer(buffer)

    @staticmethod
    def _parse_footer(buffer: bytes) -> FileFooter:
        min_size = 2 * len(MAGIC) + _FOOTER_LEN.size
        if len(buffer) < min_size:
            raise FormatError("file too small to be a columnar file")
        if buffer[: len(MAGIC)] != MAGIC or buffer[-len(MAGIC) :] != MAGIC:
            raise FormatError("bad magic bytes (not a columnar file)")
        (footer_len,) = _FOOTER_LEN.unpack(
            buffer[-len(MAGIC) - _FOOTER_LEN.size : -len(MAGIC)]
        )
        footer_end = len(buffer) - len(MAGIC) - _FOOTER_LEN.size
        footer_start = footer_end - footer_len
        if footer_start < len(MAGIC):
            raise FormatError("footer length exceeds file size")
        try:
            obj = json.loads(buffer[footer_start:footer_end].decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise FormatError(f"unparseable footer: {exc}") from exc
        try:
            return FileFooter.from_json(obj)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise FormatError(f"malformed footer structure: {exc!r}") from exc

    @property
    def num_rows(self) -> int:
        """Row count recorded in the footer."""
        return self.footer.num_rows

    def _read_chunk(self, chunk: ColumnChunk) -> np.ndarray:
        raw = self._buf[chunk.offset : chunk.offset + chunk.size]
        if len(raw) != chunk.size:
            raise FormatError(f"chunk for {chunk.column!r} extends past end of file")
        self.bytes_read += chunk.size
        return enc.decode_column(raw)

    def read_column(self, name: str) -> ColumnData:
        """Decode one full column (all row groups concatenated)."""
        if name in self.footer.sparse_names:
            lengths = [
                self._read_chunk(c) for c in self.footer.chunks_for(name, PART_LENGTHS)
            ]
            values = [
                self._read_chunk(c) for c in self.footer.chunks_for(name, PART_VALUES)
            ]
            if not lengths:
                raise FormatError(f"no chunks for sparse column {name!r}")
            return (
                np.concatenate(lengths).astype(np.int32),
                np.concatenate(values).astype(np.int64)
                if values and sum(len(v) for v in values)
                else np.empty(0, dtype=np.int64),
            )
        chunks = self.footer.chunks_for(name, PART_VALUES)
        if not chunks:
            raise FormatError(f"unknown column {name!r}")
        return np.concatenate([self._read_chunk(c) for c in chunks])

    def read_columns(self, names: Iterable[str]) -> TableData:
        """Decode several columns; only their chunks are touched/charged."""
        return {name: self.read_column(name) for name in names}

    def read_row_group(self, group: int, names: Iterable[str]) -> TableData:
        """Decode the requested columns of a single row group."""
        if group < 0 or group >= len(self.footer.row_group_rows):
            raise FormatError(f"row group {group} out of range")
        out: TableData = {}
        for name in names:
            if name in self.footer.sparse_names:
                lengths_chunks = [
                    c
                    for c in self.footer.chunks_for(name, PART_LENGTHS)
                    if c.row_group == group
                ]
                values_chunks = [
                    c
                    for c in self.footer.chunks_for(name, PART_VALUES)
                    if c.row_group == group
                ]
                if not lengths_chunks:
                    raise FormatError(f"no chunks for {name!r} in group {group}")
                out[name] = (
                    self._read_chunk(lengths_chunks[0]).astype(np.int32),
                    self._read_chunk(values_chunks[0]).astype(np.int64),
                )
            else:
                chunks = [
                    c
                    for c in self.footer.chunks_for(name, PART_VALUES)
                    if c.row_group == group
                ]
                if not chunks:
                    raise FormatError(f"no chunks for {name!r} in group {group}")
                out[name] = self._read_chunk(chunks[0])
        return out


def write_table(
    schema: TableSchema,
    data: TableData,
    row_group_size: int = 8192,
    encoding_policy=default_encoding_policy,
) -> bytes:
    """Convenience wrapper around :class:`ColumnarFileWriter`."""
    return ColumnarFileWriter(schema, row_group_size, encoding_policy).write(data)


def read_columns(buffer: bytes, names: Sequence[str]) -> TableData:
    """Convenience wrapper around :class:`ColumnarFileReader`."""
    return ColumnarFileReader(buffer).read_columns(names)

"""Tests for the DLRM cost model, GPU training model, and train manager."""

import pytest

from repro.features.specs import all_models, get_model
from repro.sim.engine import Engine, Timeout
from repro.training.dlrm import DlrmCostModel
from repro.training.gpu import GpuTrainingModel
from repro.training.trainer import TrainManager


class TestDlrmCostModel:
    def test_interaction_terms(self):
        model = DlrmCostModel(get_model("RM1"))  # 39 tables + 1 dense vector
        assert model.interaction_inputs == 40
        assert model.interaction_terms == 40 * 39 // 2

    def test_top_mlp_input_width(self):
        model = DlrmCostModel(get_model("RM1"))
        assert model.top_mlp_input_width == 128 + model.interaction_terms

    def test_forward_macs_grow_with_model(self):
        rm1 = DlrmCostModel(get_model("RM1")).forward_macs()
        rm5 = DlrmCostModel(get_model("RM5")).forward_macs()
        assert rm5 > rm1

    def test_workload_embedding_bytes(self):
        spec = get_model("RM5")
        work = DlrmCostModel(spec).workload(embedding_traffic_multiplier=4.0)
        expected = 882 * 128 * 4 * 4.0
        assert work.embedding_bytes == pytest.approx(expected)

    def test_training_flops_multiplier(self):
        model = DlrmCostModel(get_model("RM2"))
        work = model.workload()
        assert work.training_flops == pytest.approx(6.0 * model.forward_macs())


class TestGpuTrainingModel:
    @pytest.fixture(scope="class")
    def gpu(self):
        return GpuTrainingModel()

    def test_rm5_demand_implies_367_cores(self, gpu):
        """Cross-check of the paper's headline provisioning number."""
        from repro.hardware.cpu import CpuCoreModel

        spec = get_model("RM5")
        cores = CpuCoreModel().cores_required(
            spec, gpu.node_throughput(spec, 8)
        )
        assert cores == 367

    def test_throughput_ordering(self, gpu):
        """Lighter models train faster."""
        t = {s.name: gpu.max_training_throughput(s) for s in all_models()}
        assert t["RM1"] > t["RM2"] > t["RM3"]
        assert t["RM3"] == pytest.approx(t["RM4"])  # bucket size irrelevant

    def test_node_scales_with_gpus(self, gpu):
        spec = get_model("RM3")
        assert gpu.node_throughput(spec, 8) == pytest.approx(
            8 * gpu.max_training_throughput(spec)
        )
        with pytest.raises(ValueError):
            gpu.node_throughput(spec, 0)

    def test_iteration_breakdown_components(self, gpu):
        breakdown = gpu.iteration_breakdown(get_model("RM5"))
        assert breakdown.embedding > breakdown.compute  # memory-bound training
        assert breakdown.total == pytest.approx(
            max(breakdown.compute, breakdown.embedding)
            + breakdown.kernel_overhead
            + breakdown.fixed_overhead
        )

    def test_utilization_clamps(self, gpu):
        spec = get_model("RM5")
        t_max = gpu.max_training_throughput(spec)
        assert gpu.utilization(spec, 10 * t_max) == 1.0
        assert gpu.utilization(spec, 0.0) == 0.0
        assert gpu.utilization(spec, t_max / 2) == pytest.approx(0.5)


class TestTrainManager:
    def test_measures_node_throughput(self):
        spec = get_model("RM1")
        manager = TrainManager(spec, num_gpus=4)
        gpu = GpuTrainingModel()
        assert manager.measure_max_throughput() == pytest.approx(
            gpu.node_throughput(spec, 4)
        )

    def test_run_consumes_batches(self):
        spec = get_model("RM1")
        manager = TrainManager(spec, num_gpus=1)
        engine = Engine()
        queue = manager.make_input_queue()

        def producer():
            for i in range(5):
                yield queue.put(i)
                yield Timeout(0.001)

        engine.spawn("producer", producer())
        engine.spawn("trainer", manager.run(engine, queue, 5))
        engine.run()
        assert manager.stats.batches_trained == 5
        assert manager.stats.training_time > 0
        assert manager.stats.finish_time > 0

    def test_starved_trainer_waits(self):
        spec = get_model("RM1")
        manager = TrainManager(spec, num_gpus=1)
        engine = Engine()
        queue = manager.make_input_queue()

        def slow_producer():
            yield Timeout(1.0)
            yield queue.put(0)

        engine.spawn("producer", slow_producer())
        engine.spawn("trainer", manager.run(engine, queue, 1))
        engine.run()
        assert manager.stats.wait_time >= 1.0
        assert manager.stats.gpu_utilization < 0.1

    def test_invalid_gpus(self):
        with pytest.raises(ValueError):
            TrainManager(get_model("RM1"), num_gpus=0)

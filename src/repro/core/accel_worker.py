"""Alternative accelerated preprocessing workers (Section VI-C, Figure 16).

Three design points compared against PreSto (SmartSSD):

* :class:`GpuPoolWorker` — an A100 in a disaggregated accelerator pool
  running NVTabular-style preprocessing (kernel-launch bound);
* :class:`U280PoolWorker` — a discrete U280 FPGA in a disaggregated pool:
  2x the PreSto units, but raw data and tensors cross the network;
* :class:`PreStoU280Worker` — the same U280 integrated *inside* the storage
  node over PCIe ("PreSto (U280)"): no raw-data network hop, larger fabric,
  but a 225 W card instead of a 25 W device.
"""

from __future__ import annotations

from typing import Dict

from repro.features.specs import ModelSpec
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.hardware.gpu_preproc import GpuPreprocModel
from repro.core.worker import PreprocessingWorker


class GpuPoolWorker(PreprocessingWorker):
    """One A100 GPU preprocessing in a disaggregated pool."""

    kind = "A100"

    def __init__(self, spec: ModelSpec, calibration: Calibration = CALIBRATION) -> None:
        super().__init__(spec)
        self.cal = calibration
        self.model = GpuPreprocModel(calibration, disaggregated=True)

    def batch_breakdown(self) -> Dict[str, float]:
        """Map GPU stages onto the canonical step names."""
        stages = self.model.batch_stages(self.spec)
        return {
            "extract_read": stages.network_in + stages.pcie_in,
            "extract_decode": 0.0,  # decoding fused into the kernel stage
            "bucketize": 0.0,
            "sigridhash": 0.0,
            "log": 0.0,
            "format_conversion": 0.0,
            "else_time": stages.kernels + stages.compute,
            "load": stages.pcie_out + stages.network_out,
        }

    def throughput(self) -> float:
        """Pipeline-bottleneck throughput of one GPU preprocessor."""
        return self.model.device_throughput(self.spec)

    @property
    def active_power(self) -> float:
        """Measured draw during (underutilized) preprocessing."""
        return self.cal.a100_preproc_active_power


class U280PoolWorker(PreprocessingWorker):
    """One discrete U280 FPGA in a disaggregated preprocessing pool."""

    kind = "U280"

    def __init__(self, spec: ModelSpec, calibration: Calibration = CALIBRATION) -> None:
        super().__init__(spec)
        self.cal = calibration
        # 2x units on the larger fabric; raw data arrives over the network,
        # then crosses PCIe into the card
        self.model = AcceleratorModel(
            calibration,
            unit_scale=calibration.u280_unit_scale,
            ingress_bw=calibration.network_bandwidth * calibration.network_read_efficiency,
        )

    def batch_breakdown(self) -> Dict[str, float]:
        stages = self.model.batch_stages(self.spec)
        breakdown = stages.as_dict()
        breakdown["extract_read"] = stages.ingress + 0.5 * stages.host
        breakdown["else_time"] = 0.5 * stages.host
        return breakdown

    def throughput(self) -> float:
        return self.model.device_throughput(self.spec)

    def data_movement_share(self) -> float:
        """Fraction of end-to-end time in data movement (paper: ~47.6%)."""
        stages = self.model.batch_stages(self.spec)
        return (stages.ingress + stages.load) / stages.latency

    @property
    def active_power(self) -> float:
        return self.cal.u280_active_power


class PreStoU280Worker(PreprocessingWorker):
    """A U280 integrated in the storage node over PCIe ("PreSto (U280)")."""

    kind = "PreSto (U280)"

    def __init__(self, spec: ModelSpec, calibration: Calibration = CALIBRATION) -> None:
        super().__init__(spec)
        self.cal = calibration
        self.model = AcceleratorModel(
            calibration,
            unit_scale=calibration.u280_unit_scale,
            ingress_bw=calibration.u280_pcie_bw,
        )

    def batch_breakdown(self) -> Dict[str, float]:
        stages = self.model.batch_stages(self.spec)
        breakdown = stages.as_dict()
        breakdown["extract_read"] = stages.ingress + 0.5 * stages.host
        breakdown["else_time"] = 0.5 * stages.host
        return breakdown

    def throughput(self) -> float:
        return self.model.device_throughput(self.spec)

    @property
    def active_power(self) -> float:
        return self.cal.u280_active_power

"""Format conversion — step 3 of the Transform phase (Figure 1).

Packs normalized feature columns into the train-ready :class:`MiniBatch`
(dense float32 matrix + KeyedJaggedTensor of embedding indices + labels)
that the Load phase ships to the trainer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import OpError
from repro.features.minibatch import KeyedJaggedTensor, MiniBatch


def to_minibatch(
    dense_columns: Dict[str, np.ndarray],
    sparse_columns: Dict[str, Tuple[np.ndarray, np.ndarray]],
    labels: np.ndarray,
    dense_order: List[str],
    sparse_order: List[str],
    batch_id: int = 0,
) -> MiniBatch:
    """Assemble a MiniBatch from normalized columns.

    ``dense_order``/``sparse_order`` pin the column layout so the trainer's
    embedding-table mapping is stable across batches.
    """
    missing_dense = [name for name in dense_order if name not in dense_columns]
    if missing_dense:
        raise OpError(f"missing dense columns {missing_dense}")
    missing_sparse = [name for name in sparse_order if name not in sparse_columns]
    if missing_sparse:
        raise OpError(f"missing sparse columns {missing_sparse}")
    if not dense_order:
        raise OpError("a mini-batch needs at least one dense column")

    batch = len(labels)
    for name in dense_order:
        if len(dense_columns[name]) != batch:
            raise OpError(
                f"dense column {name!r} has {len(dense_columns[name])} rows, "
                f"batch is {batch}"
            )
    dense = np.column_stack(
        [dense_columns[name].astype(np.float32) for name in dense_order]
    )
    kjt = KeyedJaggedTensor.from_dict(
        {name: sparse_columns[name] for name in sparse_order}
    )
    if kjt.batch_size != batch:
        raise OpError(f"sparse batch {kjt.batch_size} != label batch {batch}")
    return MiniBatch(
        dense=dense,
        sparse=kjt,
        labels=np.asarray(labels, dtype=np.float32),
        batch_id=batch_id,
    )

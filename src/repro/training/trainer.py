"""Train manager — the consumer side of the Figure 9 software architecture.

The train manager lives on the GPU training node.  At job launch it
stress-tests the GPU to measure the maximum training throughput ``T``
(step 2), allocates the mini-batch input queue, and then loops: pop a
mini-batch from the queue, transfer it to the GPU, and run one training
iteration (steps 6–7).  GPU utilization falls out of the simulation as
training time over wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.sim.engine import Engine, Timeout
from repro.sim.resources import Store
from repro.training.gpu import GpuTrainingModel


@dataclass
class TrainStats:
    """Outcome of one simulated training run."""

    batches_trained: int = 0
    training_time: float = 0.0  # seconds the GPU spent training
    wait_time: float = 0.0  # seconds the GPU starved on the input queue
    finish_time: float = 0.0
    first_batch_time: float = 0.0  # when the first mini-batch arrived
    iteration_times: List[float] = field(default_factory=list)

    @property
    def gpu_utilization(self) -> float:
        """Fraction of wall time spent actually training (Fig. 3 metric)."""
        if self.finish_time <= 0:
            return 0.0
        return min(self.training_time / self.finish_time, 1.0)

    @property
    def achieved_throughput(self) -> float:
        """Samples/s actually trained (requires iteration_times batch size)."""
        return 0.0 if not self.iteration_times else (
            self.batches_trained / self.finish_time if self.finish_time else 0.0
        )


class TrainManager:
    """Consumes mini-batches from the input queue and trains on GPUs."""

    def __init__(
        self,
        spec: ModelSpec,
        num_gpus: int = 1,
        calibration: Calibration = CALIBRATION,
        input_queue_capacity: int = 16,
    ) -> None:
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        self.spec = spec
        self.num_gpus = num_gpus
        self.cal = calibration
        self.gpu_model = GpuTrainingModel(calibration)
        self.input_queue_capacity = input_queue_capacity
        self.stats = TrainStats()

    def measure_max_throughput(self) -> float:
        """Step 2: stress-test the GPUs with dummy inputs to find ``T``."""
        return self.gpu_model.node_throughput(self.spec, self.num_gpus)

    def make_input_queue(self, name: str = "input-queue") -> Store:
        """Step 1: allocate the bounded mini-batch input queue."""
        return Store(name, capacity=self.input_queue_capacity)

    def iteration_time(self) -> float:
        """Seconds per training iteration across the data-parallel GPUs."""
        return self.spec.batch_size / self.measure_max_throughput()

    def run(self, engine: Engine, queue: Store, num_batches: int):
        """DES process: train ``num_batches`` mini-batches from ``queue``."""
        iteration = self.iteration_time()
        h2d = (
            self.cal.train_ready_batch_bytes(self.spec)
            / self.cal.gpu_preproc_pcie_bw
        )
        for index in range(num_batches):
            wait_start = engine.now
            yield queue.get()
            if index == 0:
                self.stats.first_batch_time = engine.now
            self.stats.wait_time += engine.now - wait_start
            # H2D overlaps compute: the next batch is prefetched while the
            # current one trains, so the copy only shows when it dominates.
            yield Timeout(max(h2d, iteration))
            self.stats.training_time += iteration
            self.stats.batches_trained += 1
            self.stats.iteration_times.append(iteration)
        self.stats.finish_time = engine.now

"""Capacity planning: preprocessing fleet sizing and 3-year TCO.

The scenario the paper's introduction motivates: a datacenter runs many
concurrent RecSys training jobs over 8-GPU nodes, and the operator must
choose between a disaggregated CPU preprocessing pool and PreSto SmartSSDs.
For a fleet of training nodes per model, this example prints the provisioned
resources, power, and 3-year cost of both options (Figures 4, 14, 15).

Run:  python examples/capacity_planning.py [num_nodes]
"""

import sys

from repro import all_models
from repro.analysis.cost import cost_breakdown
from repro.core.systems import DisaggCpuSystem, PreStoSystem
from repro.experiments.common import format_table


def plan_fleet(num_nodes: int) -> None:
    rows = []
    total_disagg_cost = total_presto_cost = 0.0
    for spec in all_models():
        disagg = DisaggCpuSystem(spec)
        presto = PreStoSystem(spec)
        cores = disagg.provision_for(8).num_workers * num_nodes
        units = presto.provision_for(8).num_workers * num_nodes

        disagg_power = disagg.power(cores)
        presto_power = presto.power(units)
        disagg_cost = cost_breakdown(disagg.capex(cores), disagg_power)
        presto_cost = cost_breakdown(presto.capex(units), presto_power)
        total_disagg_cost += disagg_cost.total
        total_presto_cost += presto_cost.total
        rows.append(
            (
                spec.name,
                cores,
                units,
                disagg_power / 1e3,
                presto_power / 1e3,
                disagg_cost.total / 1e3,
                presto_cost.total / 1e3,
                disagg_cost.total / presto_cost.total,
            )
        )

    print(
        format_table(
            [
                "model",
                "CPU cores",
                "ISP units",
                "Disagg kW",
                "PreSto kW",
                "Disagg k$",
                "PreSto k$",
                "savings (x)",
            ],
            rows,
            title=(
                f"Preprocessing fleet for {num_nodes} x 8-GPU training nodes "
                f"per model (3-year CapEx + OpEx)"
            ),
        )
    )
    print(
        f"\nFleet total: ${total_disagg_cost:,.0f} (Disagg) vs "
        f"${total_presto_cost:,.0f} (PreSto) — "
        f"{total_disagg_cost / total_presto_cost:.1f}x cheaper with PreSto"
    )


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    if num_nodes <= 0:
        raise SystemExit("num_nodes must be positive")
    plan_fleet(num_nodes)


if __name__ == "__main__":
    main()

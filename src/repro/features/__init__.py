"""Dataset substrate: model/dataset specs (Table I), synthetic raw-data
generators (Criteo-like RM1 plus production-scale RM2–RM5), the real Criteo
TSV loader, the Figure-1 ingestion path, and the train-ready mini-batch
containers (KeyedJaggedTensor-style)."""

from repro.features.specs import ModelSpec, MLPSpec, RECSYS_MODELS, get_model
from repro.features.synthetic import SyntheticTableGenerator, generate_raw_table
from repro.features.criteo import load_criteo_tsv, dump_criteo_tsv
from repro.features.ingestion import run_ingestion
from repro.features.minibatch import KeyedJaggedTensor, MiniBatch

__all__ = [
    "ModelSpec",
    "MLPSpec",
    "RECSYS_MODELS",
    "get_model",
    "SyntheticTableGenerator",
    "generate_raw_table",
    "load_criteo_tsv",
    "dump_criteo_tsv",
    "run_ingestion",
    "KeyedJaggedTensor",
    "MiniBatch",
]

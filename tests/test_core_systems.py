"""Tests for the system design points and provisioning."""

import pytest

from repro.api import available_systems, get_system
from repro.core.provision import ProvisioningPlan, provision, workers_for
from repro.core.systems import (
    A100PoolSystem,
    CoLocatedCpuSystem,
    DisaggCpuSystem,
    PreStoSystem,
    PreStoU280System,
    U280PoolSystem,
)
from repro.errors import ConfigurationError, ProvisioningError
from repro.features.specs import get_model


class TestProvisioning:
    def test_workers_for_ceiling(self):
        assert workers_for(100.0, 30.0) == 4
        assert workers_for(90.0, 30.0) == 3
        assert workers_for(0.0, 30.0) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ProvisioningError):
            workers_for(10.0, 0.0)
        with pytest.raises(ProvisioningError):
            workers_for(-1.0, 10.0)

    def test_plan_headroom_at_least_one(self):
        plan = provision(get_model("RM5"), worker_throughput=50_000.0, num_gpus=8)
        assert plan.headroom >= 1.0
        assert plan.aggregate_preprocessing_throughput >= plan.training_throughput

    def test_plan_fields(self):
        plan = ProvisioningPlan("RM1", 100.0, 30.0, 4)
        assert plan.aggregate_preprocessing_throughput == pytest.approx(120.0)
        assert plan.headroom == pytest.approx(1.2)


class TestSystemContracts:
    @pytest.mark.parametrize("name", list(available_systems()))
    def test_common_interface(self, name):
        system = get_system(name, get_model("RM2"))
        assert system.worker_throughput() > 0
        assert system.power(2) > 0
        assert system.capex(2) >= 0

    def test_linear_scaling_default(self):
        system = DisaggCpuSystem(get_model("RM3"))
        assert system.aggregate_throughput(10) == pytest.approx(
            10 * system.worker_throughput()
        )
        with pytest.raises(ConfigurationError):
            system.aggregate_throughput(-1)


class TestDisaggCpu:
    def test_provision_rm5_367(self):
        plan = DisaggCpuSystem(get_model("RM5")).provision_for(8)
        assert plan.num_workers == 367

    def test_nodes(self):
        system = DisaggCpuSystem(get_model("RM5"))
        assert system.nodes(367) == 12

    def test_cost_per_core(self):
        system = DisaggCpuSystem(get_model("RM1"))
        assert system.capex(64) == pytest.approx(64 * 12_000 / 32)


class TestCoLocated:
    def test_core_cap_enforced(self):
        system = CoLocatedCpuSystem(get_model("RM5"))
        with pytest.raises(ConfigurationError, match="caps at 16"):
            system.aggregate_throughput(17)

    def test_sublinear_scaling(self):
        system = CoLocatedCpuSystem(get_model("RM5"))
        assert system.aggregate_throughput(16) < 16 * system.aggregate_throughput(1)

    def test_no_capex(self):
        assert CoLocatedCpuSystem(get_model("RM1")).capex(16) == 0.0


class TestPreSto:
    def test_provision_max_nine_units(self):
        from repro.features.specs import all_models

        units = [
            PreStoSystem(spec).provision_for(8).num_workers for spec in all_models()
        ]
        assert max(units) == 9

    def test_single_device_beats_32_cores(self):
        for name in ("RM1", "RM3", "RM5"):
            spec = get_model(name)
            presto = PreStoSystem(spec).worker_throughput()
            disagg32 = DisaggCpuSystem(spec).aggregate_throughput(32)
            assert presto > disagg32

    def test_worst_case_power(self):
        system = PreStoSystem(get_model("RM5"))
        assert system.power(9, worst_case=True) == pytest.approx(225.0)

    def test_capex_includes_host_share(self):
        system = PreStoSystem(get_model("RM5"))
        assert system.capex(9) == pytest.approx(9 * 2500 + 3000)


class TestAlternatives:
    def test_presto_faster_than_a100(self):
        spec = get_model("RM5")
        assert (
            PreStoSystem(spec).worker_throughput()
            > 2.0 * A100PoolSystem(spec).worker_throughput()
        )

    def test_u280_slightly_faster_than_smartssd(self):
        spec = get_model("RM5")
        ratio = (
            U280PoolSystem(spec).worker_throughput()
            / PreStoSystem(spec).worker_throughput()
        )
        assert 1.0 < ratio < 1.35

    def test_presto_u280_at_least_u280_pool(self):
        spec = get_model("RM5")
        assert (
            PreStoU280System(spec).worker_throughput()
            >= U280PoolSystem(spec).worker_throughput() * 0.99
        )

    def test_smartssd_best_perf_per_watt(self):
        spec = get_model("RM5")
        designs = {
            "presto": (PreStoSystem(spec).worker_throughput(), 16.0),
            "a100": (A100PoolSystem(spec).worker_throughput(), 100.0),
            "u280": (U280PoolSystem(spec).worker_throughput(), 46.0),
        }
        per_watt = {k: t / p for k, (t, p) in designs.items()}
        assert per_watt["presto"] == max(per_watt.values())

"""The fault-tolerant batch runner — per-task dispatch, not ``pool.map``.

:class:`BatchRunner` is the shared execution engine behind ``Sweep.run``
and ``run_experiments``.  Instead of handing the whole batch to
``multiprocessing.Pool.map`` — where one OOM-killed worker or one raising
task aborts everything with no record of which task died — the runner
owns a small pool of worker *processes* it talks to over pipes, submits
tasks individually, and turns every misbehavior into a per-task
:class:`~repro.batch.outcomes.BatchOutcome`:

* a task that **raises** is retried with exponential backoff up to
  ``policy.max_retries`` times, then ends ``failed``;
* a task that **blocks** past ``policy.task_timeout_s`` has its worker
  terminated and replaced (the serve watchdog's move) and ends
  ``timeout``;
* a worker that **dies** mid-task (OOM kill, SIGKILL, injected crash)
  ends that task ``interrupted`` — never retried, because the runner
  cannot know what side effects the dead attempt had — and a replacement
  worker is spawned for the remaining work.

``policy.failure_mode`` decides what a non-ok outcome means: ``strict``
stops dispatching, drains in-flight tasks (their results are still
journaled and reported through ``on_outcome``), and raises a typed
:class:`~repro.errors.BatchTaskError` /
:class:`~repro.errors.TaskTimeoutError`; ``degrade`` keeps going and
returns the full input-ordered outcome list.

With a :class:`~repro.batch.journal.BatchJournal` attached, every
attempt start and terminal outcome is journaled, and ``run(...,
resume=True)`` replays the journal: completed tasks are prefilled from
their stored result payloads (``decode_result``), everything else —
failed, timed out, interrupted, or merely started when the writer died —
is re-enqueued, and the combined output is byte-identical to an
uninterrupted run.

Workers are forked, so an installed fault injector is inherited and the
``worker-crash`` / ``task-hang`` probes fire deterministically inside
the children — the chaos tier drives the runner through exactly the
code paths a real fleet failure would take.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.batch.journal import BatchJournal
from repro.batch.outcomes import BatchOutcome
from repro.batch.policy import BatchPolicy
from repro.errors import (
    BatchError,
    BatchTaskError,
    FaultError,
    TaskTimeoutError,
)
from repro.faults.injector import fault_point

# fork keeps an installed fault injector (and any closure state) visible
# in the children; on platforms without fork the default context still
# runs module-level worker functions correctly.
try:
    _CTX = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - non-POSIX fallback
    _CTX = multiprocessing.get_context()


def _child_main(conn, worker_fn: Callable[[Any], Any], name: str) -> None:
    """Worker-process loop: recv a task, run it, send the outcome back.

    The ``worker-crash`` probe raises ``SystemExit`` — a ``BaseException``
    that escapes the ``except Exception`` below and kills the process, so
    the parent sees exactly what an OOM kill looks like: a dead worker
    with a task in flight.  ``task-hang`` blocks past any sane deadline,
    handing the parent watchdog a stuck worker to terminate.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break  # parent went away; die quietly
        if message is None:
            break  # orderly shutdown
        index, attempt, key, task = message
        started = time.monotonic()
        try:
            fault_point("worker-crash", item=key, worker=name)
            fault_point("task-hang", item=key, worker=name)
            result = worker_fn(task)
        except Exception as exc:
            try:
                conn.send(("error", index, attempt,
                           f"{type(exc).__name__}: {exc}",
                           time.monotonic() - started))
            except (BrokenPipeError, OSError):
                break
        else:
            try:
                conn.send(("ok", index, attempt, result,
                           time.monotonic() - started))
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """Parent-side handle for one batch worker process."""

    def __init__(self, worker_fn: Callable[[Any], Any], name: str) -> None:
        parent_end, child_end = _CTX.Pipe()
        self.conn = parent_end
        self.name = name
        self.current: Optional[int] = None  # index of the in-flight task
        self.deadline: Optional[float] = None  # monotonic watchdog deadline
        self.proc = _CTX.Process(
            target=_child_main,
            args=(child_end, worker_fn, name),
            name=name,
            daemon=True,
        )
        self.proc.start()
        child_end.close()


def _default_key(index: int, task: Any) -> str:
    return f"task-{index}"


class BatchRunner:
    """Shared fault-tolerant executor for the batch tier (see module doc).

    ``task_key(index, task)`` must return a *content* identity (a digest)
    when resume matters — it is pinned in the journal header and verified
    positionally on resume.  ``encode_result`` / ``decode_result`` map
    results to/from the JSON payload journaled for ``ok`` tasks (default:
    identity, for results that are already plain JSON).  ``on_outcome``
    is called in the parent as each *fresh* terminal outcome lands —
    ``run_experiments`` uses it to cache completed results even when a
    later task fails in strict mode.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        policy: Optional[BatchPolicy] = None,
        journal: Optional[BatchJournal] = None,
        task_key: Callable[[int, Any], str] = _default_key,
        task_label: Optional[Callable[[int, Any], str]] = None,
        encode_result: Callable[[int, Any], Any] = lambda index, result: result,
        decode_result: Callable[[int, Any], Any] = lambda index, payload: payload,
        on_outcome: Optional[Callable[[BatchOutcome], None]] = None,
    ) -> None:
        if not callable(worker_fn):
            raise BatchError(f"worker_fn must be callable, got {worker_fn!r}")
        self.worker_fn = worker_fn
        self.policy = policy if policy is not None else BatchPolicy()
        self.journal = journal
        self.task_key = task_key
        self.task_label = task_label or task_key
        self.encode_result = encode_result
        self.decode_result = decode_result
        self.on_outcome = on_outcome
        #: journal appends that failed (torn write, disk full) — the
        #: journal self-heals on the next append, the batch keeps going
        self.journal_errors: List[str] = []
        #: workers still alive after shutdown escalated to SIGKILL
        self.leaked_workers = 0
        #: tasks prefilled from the journal by the last resumed run
        self.resumed_tasks = 0

    # -- public entry point --------------------------------------------------

    def run(self, tasks: Sequence[Any], parallel: bool = True,
            resume: bool = False,
            precomputed: Optional[Dict[int, Any]] = None,
            ) -> List[BatchOutcome]:
        """Execute ``tasks``; outcomes come back in input order.

        In ``strict`` mode a non-ok task raises after in-flight work
        drains; in ``degrade`` mode every task ends in an outcome and the
        full list is returned.  With ``resume=True`` the journal is
        replayed first: tasks whose last terminal line is ``ok`` are
        prefilled from their stored payloads, everything else re-runs.
        ``precomputed`` maps task indices to results obtained elsewhere
        (a cache): they become ``ok`` outcomes with ``attempts=0`` —
        journaled like fresh completions, but distinguishable from them.
        """
        tasks = list(tasks)
        keys = [self.task_key(i, task) for i, task in enumerate(tasks)]
        labels = [str(self.task_label(i, task))
                  for i, task in enumerate(tasks)]
        outcomes: Dict[int, BatchOutcome] = {}
        self.resumed_tasks = 0
        if resume:
            if self.journal is None:
                raise BatchError("resume requires a batch journal")
            state = self.journal.load()
            if list(state.keys) != keys:
                raise BatchError(
                    f"journal {self.journal.path} does not describe this "
                    f"batch: journal pins {len(state.keys)} task keys, "
                    f"this batch has {len(keys)}, and/or their content "
                    f"digests differ"
                )
            for index in sorted(state.completed()):
                line = state.outcomes[index]
                outcomes[index] = BatchOutcome(
                    index=index,
                    key=keys[index],
                    label=labels[index],
                    state="ok",
                    attempts=int(line.get("attempts") or 0),
                    elapsed_s=float(line.get("elapsed_s") or 0.0),
                    result=self.decode_result(index, line.get("result")),
                )
            self.resumed_tasks = len(outcomes)
            self._journal_safely(self.journal.mark_resume)
        elif self.journal is not None:
            self._journal_safely(
                lambda: self.journal.start_run(keys, self.policy)
            )
        for index, result in sorted((precomputed or {}).items()):
            if index in outcomes:
                continue  # the journal's replayed result wins
            if not (0 <= index < len(tasks)):
                raise BatchError(
                    f"precomputed index {index} out of range for "
                    f"{len(tasks)} tasks"
                )
            self._record(BatchOutcome(
                index=index, key=keys[index], label=labels[index],
                state="ok", attempts=0, elapsed_s=0.0, result=result,
            ), outcomes)
        pending = [i for i in range(len(tasks)) if i not in outcomes]
        first_failure: Optional[BatchOutcome] = None
        if pending:
            if parallel:
                first_failure = self._run_parallel(
                    tasks, keys, labels, pending, outcomes
                )
            else:
                first_failure = self._run_serial(
                    tasks, keys, labels, pending, outcomes
                )
        if first_failure is not None:
            self._raise_strict(first_failure)
        return [outcomes[i] for i in sorted(outcomes)]

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, tasks, keys, labels, pending, outcomes):
        """Inline execution with retries; ``task_timeout_s`` is not
        enforced here (there is no worker to abandon — parallel mode owns
        the watchdog)."""
        for index in pending:
            outcome = self._run_one_inline(
                index, tasks[index], keys[index], labels[index]
            )
            self._record(outcome, outcomes)
            if not outcome.ok and self.policy.failure_mode == "strict":
                return outcome
        return None

    def _run_one_inline(self, index, task, key, label) -> BatchOutcome:
        attempts = 0
        started = time.monotonic()
        while True:
            attempts += 1
            if self.journal is not None:
                self._journal_safely(
                    lambda: self.journal.task_started(index, key, attempts)
                )
            try:
                result = self.worker_fn(task)
            except Exception as exc:
                if attempts <= self.policy.max_retries:
                    time.sleep(self.policy.backoff_for(attempts))
                    continue
                return BatchOutcome(
                    index=index, key=key, label=label, state="failed",
                    attempts=attempts,
                    elapsed_s=time.monotonic() - started,
                    error=f"{type(exc).__name__}: {exc}",
                )
            return BatchOutcome(
                index=index, key=key, label=label, state="ok",
                attempts=attempts,
                elapsed_s=time.monotonic() - started,
                result=result,
            )

    # -- parallel path -------------------------------------------------------

    def _run_parallel(self, tasks, keys, labels, pending, outcomes):
        policy = self.policy
        ready = deque(pending)
        attempts: Dict[int, int] = {i: 0 for i in pending}
        first_started: Dict[int, float] = {}
        retries: List[tuple] = []  # (not-before monotonic, index)
        first_failure: Optional[BatchOutcome] = None
        spawned = policy.worker_count(len(pending))
        workers: List[_Worker] = [
            self._spawn(f"batch-worker-{n}") for n in range(spawned)
        ]
        try:
            while True:
                now = time.monotonic()
                # promote due retries back into the ready queue
                if retries and first_failure is None:
                    due = sorted(
                        index for when, index in retries if when <= now
                    )
                    if due:
                        retries = [
                            entry for entry in retries if entry[0] > now
                        ]
                        ready.extend(due)
                # dispatch to idle workers (strict stop: drain only)
                if first_failure is None:
                    for worker in workers:
                        if not ready:
                            break
                        if worker.current is not None:
                            continue
                        self._dispatch(
                            worker, ready.popleft(), tasks, keys,
                            attempts, first_started, now
                        )
                in_flight = [w for w in workers if w.current is not None]
                if not in_flight:
                    if first_failure is not None:
                        break
                    if not ready and not retries:
                        break  # all outcomes landed
                # how long to block: next watchdog deadline or next retry
                wait_until = None
                for worker in in_flight:
                    if worker.deadline is not None and (
                        wait_until is None or worker.deadline < wait_until
                    ):
                        wait_until = worker.deadline
                if retries and first_failure is None:
                    next_retry = min(when for when, _ in retries)
                    if wait_until is None or next_retry < wait_until:
                        wait_until = next_retry
                timeout = (
                    0.25 if wait_until is None
                    else max(0.0, min(wait_until - now, 0.25))
                )
                if in_flight:
                    readable = connection.wait(
                        [w.conn for w in in_flight], timeout
                    )
                else:
                    time.sleep(min(timeout, 0.05) or 0.01)
                    readable = []
                # drain messages and reap dead workers
                for worker in list(workers):
                    if worker.current is None or worker.conn not in readable:
                        continue
                    index = worker.current
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        message = None
                    if message is None:
                        # the worker died mid-task (OOM kill, SIGKILL,
                        # injected crash): the task is interrupted, never
                        # retried, and the worker is replaced if work
                        # remains
                        self._reap(worker)
                        workers.remove(worker)
                        outcome = BatchOutcome(
                            index=index, key=keys[index],
                            label=labels[index], state="interrupted",
                            attempts=attempts[index],
                            elapsed_s=(
                                time.monotonic() - first_started[index]
                            ),
                            error=(
                                f"worker {worker.name} died while running "
                                f"this task (exitcode "
                                f"{worker.proc.exitcode})"
                            ),
                        )
                        self._record(outcome, outcomes)
                        if (
                            policy.failure_mode == "strict"
                            and first_failure is None
                        ):
                            first_failure = outcome
                        if first_failure is None and (ready or retries):
                            workers.append(
                                self._spawn(f"batch-worker-{spawned}")
                            )
                            spawned += 1
                        continue
                    kind, msg_index, _attempt, payload, elapsed = message
                    worker.current = None
                    worker.deadline = None
                    if msg_index != index:  # pragma: no cover - protocol bug
                        raise BatchError(
                            f"worker {worker.name} answered for task "
                            f"{msg_index}, expected {index}"
                        )
                    if kind == "ok":
                        self._record(BatchOutcome(
                            index=index, key=keys[index],
                            label=labels[index], state="ok",
                            attempts=attempts[index], elapsed_s=elapsed,
                            result=payload,
                        ), outcomes)
                        continue
                    if (
                        attempts[index] <= policy.max_retries
                        and first_failure is None
                    ):
                        retries.append((
                            time.monotonic()
                            + policy.backoff_for(attempts[index]),
                            index,
                        ))
                        continue
                    outcome = BatchOutcome(
                        index=index, key=keys[index], label=labels[index],
                        state="failed", attempts=attempts[index],
                        elapsed_s=elapsed, error=payload,
                    )
                    self._record(outcome, outcomes)
                    if (
                        policy.failure_mode == "strict"
                        and first_failure is None
                    ):
                        first_failure = outcome
                # watchdog: terminate and replace workers past deadline
                now = time.monotonic()
                for worker in list(workers):
                    if (
                        worker.current is None
                        or worker.deadline is None
                        or now < worker.deadline
                    ):
                        continue
                    index = worker.current
                    self._kill(worker)
                    workers.remove(worker)
                    outcome = BatchOutcome(
                        index=index, key=keys[index], label=labels[index],
                        state="timeout", attempts=attempts[index],
                        elapsed_s=now - first_started[index],
                        error=(
                            f"task exceeded task_timeout_s="
                            f"{policy.task_timeout_s}; worker "
                            f"{worker.name} terminated and replaced"
                        ),
                    )
                    self._record(outcome, outcomes)
                    if (
                        policy.failure_mode == "strict"
                        and first_failure is None
                    ):
                        first_failure = outcome
                    if first_failure is None and (ready or retries):
                        workers.append(
                            self._spawn(f"batch-worker-{spawned}")
                        )
                        spawned += 1
        finally:
            self._shutdown(workers)
        return first_failure

    def _dispatch(self, worker, index, tasks, keys, attempts,
                  first_started, now) -> None:
        attempts[index] += 1
        first_started.setdefault(index, now)
        if self.journal is not None:
            self._journal_safely(
                lambda: self.journal.task_started(
                    index, keys[index], attempts[index]
                )
            )
        worker.conn.send((index, attempts[index], keys[index], tasks[index]))
        worker.current = index
        worker.deadline = (
            now + self.policy.task_timeout_s
            if self.policy.task_timeout_s is not None
            else None
        )

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, name: str) -> _Worker:
        return _Worker(self.worker_fn, name)

    def _reap(self, worker: _Worker) -> None:
        """Join a worker that already died on its own."""
        worker.proc.join(1.0)
        if worker.proc.is_alive():  # pragma: no cover - defensive
            worker.proc.terminate()
            worker.proc.join(1.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _kill(self, worker: _Worker) -> None:
        """Terminate a stuck worker, escalating to SIGKILL."""
        worker.proc.terminate()
        worker.proc.join(1.0)
        if worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(1.0)
        if worker.proc.is_alive():  # pragma: no cover - defensive
            self.leaked_workers += 1
        try:
            worker.conn.close()
        except OSError:
            pass

    def _shutdown(self, workers: List[_Worker]) -> None:
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            worker.proc.join(max(0.0, deadline - time.monotonic()))
        for worker in workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
        for worker in workers:
            if worker.proc.is_alive():
                worker.proc.join(1.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(1.0)
            if worker.proc.is_alive():  # pragma: no cover - defensive
                self.leaked_workers += 1
            try:
                worker.conn.close()
            except OSError:
                pass

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, outcome: BatchOutcome,
                outcomes: Dict[int, BatchOutcome]) -> None:
        outcomes[outcome.index] = outcome
        if self.journal is not None:
            payload = (
                self.encode_result(outcome.index, outcome.result)
                if outcome.ok else None
            )
            self._journal_safely(
                lambda: self.journal.task_done(outcome, payload)
            )
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _journal_safely(self, write: Callable[[], None]) -> None:
        """Journal appends must not kill the batch: a torn write or a
        full disk is recorded and the journal self-heals on the next
        append — the affected task simply re-runs on resume."""
        try:
            write()
        except (FaultError, OSError) as exc:
            self.journal_errors.append(f"{type(exc).__name__}: {exc}")

    def _raise_strict(self, outcome: BatchOutcome) -> None:
        if outcome.state == "timeout":
            raise TaskTimeoutError(
                f"batch task {outcome.label} "
                f"(attempt {outcome.attempts}): {outcome.error}"
            )
        raise BatchTaskError(
            f"batch task {outcome.label} ended {outcome.state} after "
            f"{outcome.attempts} attempt(s): {outcome.error}"
        )

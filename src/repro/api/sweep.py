"""Parallel scenario sweeps with deterministic result ordering.

A :class:`Sweep` is an ordered collection of :class:`~repro.api.scenario.Scenario`
records.  :meth:`Sweep.run` executes them across a ``multiprocessing`` pool
(scenarios are frozen, picklable, and side-effect free, so fan-out is safe)
and always returns results in scenario order — a parallel run is
indistinguishable from a serial one except for wall-clock time.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.api.result import RunResult
from repro.api.scenario import Scenario


def _run_scenario(scenario: Scenario) -> RunResult:
    """Module-level so pool workers can unpickle it."""
    return scenario.run()


def _as_tuple(value: Union[object, Iterable[object]]) -> Tuple[object, ...]:
    if isinstance(value, (str, int, float)) or value is None:
        return (value,)
    return tuple(value)


class Sweep:
    """An ordered grid of scenarios runnable serially or in parallel."""

    def __init__(self, scenarios: Iterable[Scenario]) -> None:
        self.scenarios: Tuple[Scenario, ...] = tuple(scenarios)
        if not self.scenarios:
            raise ConfigurationError("a sweep needs at least one scenario")
        for scenario in self.scenarios:
            if not isinstance(scenario, Scenario):
                raise ConfigurationError(
                    f"sweeps take Scenario records, got {scenario!r}"
                )

    @classmethod
    def grid(
        cls,
        models: Union[str, Sequence[str]],
        systems: Union[str, Sequence[str]],
        num_gpus: Union[int, Sequence[int]] = (8,),
        **common: object,
    ) -> "Sweep":
        """Cartesian product (models x systems x num_gpus), models outermost.

        ``common`` keyword arguments are applied to every scenario
        (``num_batches``, ``queue_capacity``, ``calibration``, ...).
        """
        scenarios = [
            Scenario(model=model, system=system, num_gpus=gpus, **common)
            for model, system, gpus in itertools.product(
                _as_tuple(models), _as_tuple(systems), _as_tuple(num_gpus)
            )
        ]
        return cls(scenarios)

    # -- execution ----------------------------------------------------------

    def run(
        self, parallel: bool = True, processes: Optional[int] = None
    ) -> List[RunResult]:
        """Execute every scenario; results are in scenario order either way."""
        if not parallel or len(self.scenarios) == 1:
            return [scenario.run() for scenario in self.scenarios]
        workers = processes or min(len(self.scenarios), os.cpu_count() or 2)
        if workers <= 1:
            return [scenario.run() for scenario in self.scenarios]
        with multiprocessing.Pool(processes=workers) as pool:
            # map() preserves input order, so parallel == serial ordering.
            return pool.map(_run_scenario, self.scenarios)

    # -- container conveniences ---------------------------------------------

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    def to_dicts(self) -> List[dict]:
        """Config-file form: one plain dict per scenario."""
        return [scenario.to_dict() for scenario in self.scenarios]

    @classmethod
    def from_dicts(cls, dicts: Iterable[dict]) -> "Sweep":
        return cls(Scenario.from_dict(d) for d in dicts)

"""Tests for the Table I model specs."""

import pytest

from repro.errors import ConfigurationError
from repro.features.specs import (
    MLPSpec,
    MODEL_NAMES,
    ModelSpec,
    all_models,
    get_model,
)


class TestMLPSpec:
    def test_macs(self):
        mlp = MLPSpec((512, 256, 128))
        assert mlp.macs(504) == 504 * 512 + 512 * 256 + 256 * 128

    def test_output_width(self):
        assert MLPSpec((1024, 1)).output_width == 1

    def test_str(self):
        assert str(MLPSpec((512, 256, 128))) == "512-256-128"

    def test_invalid_layers(self):
        with pytest.raises(ConfigurationError):
            MLPSpec(())
        with pytest.raises(ConfigurationError):
            MLPSpec((512, 0))


class TestTableI:
    def test_all_five_models(self):
        assert MODEL_NAMES == ["RM1", "RM2", "RM3", "RM4", "RM5"]
        assert len(all_models()) == 5

    def test_rm1_is_criteo(self):
        rm1 = get_model("RM1")
        assert rm1.is_public
        assert (rm1.num_dense, rm1.num_sparse, rm1.avg_sparse_length) == (13, 26, 1)
        assert rm1.num_tables == 39

    def test_production_models_scaled_up(self):
        for name in ("RM2", "RM3", "RM4", "RM5"):
            spec = get_model(name)
            assert spec.num_dense == 504
            assert spec.num_sparse == 42
            assert spec.avg_sparse_length == 20
            assert not spec.is_public

    def test_bucket_sizes(self):
        assert [get_model(n).bucket_size for n in MODEL_NAMES] == [
            1024, 1024, 1024, 2048, 4096,
        ]

    def test_tables_equal_sparse_plus_generated(self):
        for spec in all_models():
            assert spec.num_tables == spec.num_sparse + spec.num_generated_sparse

    def test_case_insensitive_lookup(self):
        assert get_model("rm3").name == "RM3"

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            get_model("RM9")


class TestDerivedQuantities:
    def test_elements_per_sample(self):
        rm5 = get_model("RM5")
        assert rm5.dense_elements_per_sample() == 504
        assert rm5.sparse_elements_per_sample() == 840
        assert rm5.bucketize_elements_per_sample() == 42
        assert rm5.embedding_indices_per_sample() == 882

    def test_train_ready_bytes(self):
        rm1 = get_model("RM1")
        # 13 dense fp32 + 39 idx int32 + 39 lengths int32 + label fp32
        assert rm1.train_ready_bytes_per_sample() == 13 * 4 + 39 * 4 + 39 * 4 + 4

    def test_schema_counts(self):
        rm2 = get_model("RM2")
        schema = rm2.schema()
        assert len(schema.dense) == 504
        assert len(schema.sparse) == 42

    def test_generated_names_align_with_sources(self):
        rm1 = get_model("RM1")
        assert len(rm1.generated_sparse_names) == len(rm1.bucketize_source_names) == 13


class TestScaling:
    def test_scaled_doubles_features(self):
        rm5 = get_model("RM5")
        scaled = rm5.scaled(2)
        assert scaled.num_dense == 1008
        assert scaled.num_sparse == 84
        assert scaled.num_generated_sparse == 84
        assert scaled.bucket_size == rm5.bucket_size
        assert scaled.name == "RM5x2"

    def test_scaled_identity(self):
        rm5 = get_model("RM5")
        assert rm5.scaled(1).num_dense == rm5.num_dense

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            get_model("RM5").scaled(0)


class TestValidation:
    def test_generated_exceeding_dense_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot generate"):
            ModelSpec(
                name="bad",
                num_dense=2,
                num_sparse=2,
                avg_sparse_length=1,
                num_generated_sparse=5,
                bucket_size=16,
                bottom_mlp=MLPSpec((8,)),
                top_mlp=MLPSpec((8, 1)),
                num_tables=7,
                avg_embeddings_per_table=100,
            )

    def test_table_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="embedding tables"):
            ModelSpec(
                name="bad",
                num_dense=4,
                num_sparse=2,
                avg_sparse_length=1,
                num_generated_sparse=2,
                bucket_size=16,
                bottom_mlp=MLPSpec((8,)),
                top_mlp=MLPSpec((8, 1)),
                num_tables=99,
                avg_embeddings_per_table=100,
            )

"""Benchmark: ablation/sensitivity study repro.experiments.abl_network_sweep."""

from conftest import assert_claims, report

from repro.experiments import abl_network_sweep


def test_ablnet(benchmark):
    """Time the abl_network_sweep study and verify its expected-shape claims."""
    result = benchmark(abl_network_sweep.run)
    report(result)
    assert_claims(result)

"""The paper's contribution: preprocessing workers (CPU baseline, PreSto ISP,
and the alternative accelerators), system design points, the T/P
provisioning logic, the preprocess manager, and the end-to-end
preprocessing-feeds-training simulation."""

from repro.core.worker import BREAKDOWN_STEPS, PreprocessingWorker, normalize_breakdown
from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.core.accel_worker import (
    GpuPoolWorker,
    U280PoolWorker,
    PreStoU280Worker,
)
from repro.core.provision import ProvisioningPlan, provision
from repro.core.systems import (
    PreprocessingSystem,
    DisaggCpuSystem,
    CoLocatedCpuSystem,
    PreStoSystem,
    A100PoolSystem,
    U280PoolSystem,
    PreStoU280System,
)
from repro.core.manager import PreprocessManager
from repro.core.endtoend import EndToEndSimulation, PipelineStats

__all__ = [
    "BREAKDOWN_STEPS",
    "PreprocessingWorker",
    "normalize_breakdown",
    "CpuPreprocessingWorker",
    "IspPreprocessingWorker",
    "GpuPoolWorker",
    "U280PoolWorker",
    "PreStoU280Worker",
    "ProvisioningPlan",
    "provision",
    "PreprocessingSystem",
    "DisaggCpuSystem",
    "CoLocatedCpuSystem",
    "PreStoSystem",
    "A100PoolSystem",
    "U280PoolSystem",
    "PreStoU280System",
    "PreprocessManager",
    "EndToEndSimulation",
    "PipelineStats",
]

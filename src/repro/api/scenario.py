"""The declarative front door: one frozen record describes one experiment.

A :class:`Scenario` names a Table I model, a registered system design point,
and the deployment shape (GPUs, worker provisioning, queue depth, optional
calibration overrides).  Validation happens at construction, the record
round-trips through plain dicts for config files, and :meth:`Scenario.run`
executes the full Figure 9 pipeline simulation and returns a uniform
:class:`~repro.api.result.RunResult`.

Quick start::

    from repro.api import Scenario

    result = Scenario(model="RM5", system="PreSto", num_gpus=8).run()
    print(result.summary())
"""

from __future__ import annotations

import dataclasses
import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.features.specs import ModelSpec, get_model
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.api.registry import REGISTRY
from repro.api.result import RunResult

#: valid values of :attr:`Scenario.provision`
PROVISION_MODES = ("demand", "explicit")

_CALIBRATION_FIELDS = frozenset(f.name for f in dataclasses.fields(Calibration))

#: overrides accepted at construction (normalized to a sorted tuple of pairs)
CalibrationOverrides = Union[
    Mapping[str, float], Tuple[Tuple[str, float], ...]
]


def calibration_overrides(calibration: Calibration) -> Dict[str, float]:
    """The fields of ``calibration`` that differ from the paper's defaults —
    the dict form a :class:`Scenario` stores."""
    return {
        name: value
        for name, value in dataclasses.asdict(calibration).items()
        if value != getattr(CALIBRATION, name)
    }


@dataclass(frozen=True)
class Scenario:
    """One declarative experiment: model x system x deployment shape."""

    model: str
    system: str
    num_gpus: int = 8
    num_workers: Optional[int] = None  # explicit allocation (else T/P)
    provision: str = "demand"  # "demand" = ceil(T/P); "explicit" = num_workers
    num_batches: int = 200
    queue_capacity: int = 16
    calibration: CalibrationOverrides = field(default_factory=tuple)
    #: reserved for stochastic workloads (trace sampling, jittered arrivals);
    #: the current simulation is fully deterministic, so today the seed is
    #: recorded and round-tripped but does not change results — scenarios
    #: differing only in seed still compare unequal, as config records should
    seed: int = 0

    def __post_init__(self) -> None:
        # model: normalize to the canonical upper-case Table I name
        spec = get_model(self.model)  # raises ConfigurationError when unknown
        object.__setattr__(self, "model", spec.name)
        # system: resolve aliases/case through the registry
        object.__setattr__(self, "system", REGISTRY.canonical(self.system))

        for name in ("num_gpus", "num_batches", "queue_capacity"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(f"{name} must be a positive int, got {value!r}")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigurationError(f"seed must be a non-negative int, got {self.seed!r}")

        if self.provision not in PROVISION_MODES:
            raise ConfigurationError(
                f"provision must be one of {PROVISION_MODES}, got {self.provision!r}"
            )
        if self.num_workers is not None:
            if not isinstance(self.num_workers, int) or self.num_workers <= 0:
                raise ConfigurationError(
                    f"num_workers must be a positive int, got {self.num_workers!r}"
                )
            # an explicit worker count implies explicit provisioning
            object.__setattr__(self, "provision", "explicit")
        elif self.provision == "explicit":
            raise ConfigurationError("provision='explicit' requires num_workers")

        object.__setattr__(
            self, "calibration", _normalize_overrides(self.calibration)
        )

    # -- construction helpers ----------------------------------------------

    @property
    def label(self) -> str:
        """Short display name, e.g. ``RM5/PreSto/8gpu``."""
        return f"{self.model}/{self.system}/{self.num_gpus}gpu"

    def spec(self) -> ModelSpec:
        """The resolved Table I model spec."""
        return get_model(self.model)

    def build_calibration(self) -> Calibration:
        """The paper calibration with this scenario's overrides applied."""
        return dataclasses.replace(CALIBRATION, **dict(self.calibration))

    def build_system(self):
        """Instantiate the named system design point."""
        return REGISTRY.create(self.system, self.spec(), self.build_calibration())

    def replace(self, **changes: Any) -> "Scenario":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- execution ----------------------------------------------------------

    def provision_plan(self):
        """The analytic T/P provisioning plan (no simulation)."""
        return self.build_system().provision_for(self.num_gpus)

    def run(self) -> RunResult:
        """Simulate the full preprocessing-feeds-training pipeline."""
        from repro.core.endtoend import EndToEndSimulation
        from repro.training.gpu import GpuTrainingModel

        spec = self.spec()
        calibration = self.build_calibration()
        system = self.build_system()
        sim = EndToEndSimulation(
            spec,
            system=system,
            num_gpus=self.num_gpus,
            calibration=calibration,
            queue_capacity=self.queue_capacity,
        )
        stats = sim.run(
            num_batches=self.num_batches,
            num_workers=self.num_workers,
            provision_to_demand=self.provision == "demand",
        )
        demand = GpuTrainingModel(calibration).node_throughput(spec, self.num_gpus)
        worker_throughput = system.worker_throughput()
        supply_capacity = stats.num_workers * worker_throughput
        return RunResult(
            scenario=self,
            num_workers=stats.num_workers,
            num_batches=stats.num_batches,
            wall_time=stats.wall_time,
            training_time=stats.training_time,
            wait_time=stats.wait_time,
            first_batch_time=stats.first_batch_time,
            gpu_utilization=stats.gpu_utilization,
            steady_state_utilization=stats.steady_state_utilization,
            preprocessing_throughput=stats.preprocessing_throughput,
            training_throughput=stats.training_throughput,
            training_demand=demand,
            worker_throughput=worker_throughput,
            headroom=supply_capacity / demand if demand > 0 else float("inf"),
            power_watts=system.power(stats.num_workers),
            capex_dollars=system.capex(stats.num_workers),
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for config files (round-trips via from_dict)."""
        return {
            "model": self.model,
            "system": self.system,
            "num_gpus": self.num_gpus,
            "num_workers": self.num_workers,
            "provision": self.provision,
            "num_batches": self.num_batches,
            "queue_capacity": self.queue_capacity,
            "calibration": dict(self.calibration),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys {sorted(unknown)}; expected {sorted(known)}"
            )
        return cls(**dict(data))


def _normalize_overrides(overrides: Any) -> Tuple[Tuple[str, float], ...]:
    """Validate calibration overrides and freeze them as sorted pairs."""
    if overrides is None:
        return ()
    items = overrides.items() if isinstance(overrides, Mapping) else overrides
    try:
        pairs = [(name, value) for name, value in items]
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"calibration overrides must be a mapping or (name, value) pairs, "
            f"got {overrides!r}"
        )
    for name, value in pairs:
        if name not in _CALIBRATION_FIELDS:
            raise ConfigurationError(
                f"unknown calibration field {name!r}; see repro.hardware."
                "calibration.Calibration for the tunables"
            )
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            raise ConfigurationError(
                f"calibration override {name!r} must be a number, got {value!r}"
            )
    return tuple(sorted(pairs))

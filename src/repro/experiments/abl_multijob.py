"""Fleet scenario — many concurrent training jobs (the intro's motivation).

Builds a representative mix of training jobs over the five Table I models
(production fleets skew toward the big models), sizes the minimum Disagg CPU
pool and PreSto SmartSSD pool that admit the whole mix, and compares
footprint, power, and 3-year cost — the paper's TCO argument at fleet scale
rather than per-node.

Also exercises admission control: with only half the required pool, both
systems reject jobs, and utilization stays high (first-fit packing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.cost import cost_breakdown
from repro.core.scheduler import FleetScheduler, TrainingJob
from repro.core.systems import DisaggCpuSystem, PreStoSystem
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.features.specs import get_model
from repro.hardware.calibration import CALIBRATION, Calibration

#: (model, number of 8-GPU jobs) — a production-leaning mix
DEFAULT_MIX: Tuple[Tuple[str, int], ...] = (
    ("RM1", 2),
    ("RM2", 3),
    ("RM3", 3),
    ("RM4", 3),
    ("RM5", 5),
)


def build_jobs(mix: Tuple[Tuple[str, int], ...] = DEFAULT_MIX) -> List[TrainingJob]:
    """Materialize the job list from a (model, count) mix."""
    jobs: List[TrainingJob] = []
    for model, count in mix:
        for i in range(count):
            jobs.append(TrainingJob(job_id=f"{model.lower()}-job{i}", spec=get_model(model)))
    return jobs


@dataclass(frozen=True)
class MultiJobResult(ExperimentResult):
    """Fleet comparison: Disagg pool vs PreSto pool for the same job mix."""

    num_jobs: int
    disagg_pool: int  # cores needed for the full mix
    presto_pool: int  # SmartSSDs needed for the full mix
    disagg_power: float
    presto_power: float
    disagg_cost: float  # 3-year CapEx + OpEx
    presto_cost: float
    rejected_at_half_disagg: int
    rejected_at_half_presto: int
    half_pool_utilization_disagg: float
    half_pool_utilization_presto: float

    @property
    def power_ratio(self) -> float:
        return self.disagg_power / self.presto_power

    @property
    def cost_ratio(self) -> float:
        return self.disagg_cost / self.presto_cost

    def claims(self) -> List[PaperClaim]:
        return [
            # the fleet amortizes PreSto's storage-host orchestration share
            # across all jobs, so the ratio exceeds the per-node Fig. 15 one
            PaperClaim("fleet power ratio (Disagg/PreSto)", 25.0, self.power_ratio, 0.35),
            PaperClaim("fleet 3-year cost ratio", 5.0, self.cost_ratio, 0.35),
            PaperClaim(
                "half-pool rejects jobs in both systems",
                1.0,
                1.0
                if self.rejected_at_half_disagg > 0 and self.rejected_at_half_presto > 0
                else 0.0,
                0.0,
            ),
            PaperClaim(
                "half-pool first-fit packs densely (min utilization)",
                0.85,
                min(
                    self.half_pool_utilization_disagg,
                    self.half_pool_utilization_presto,
                ),
                0.20,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            ("pool size (workers)", self.disagg_pool, self.presto_pool),
            ("power (kW)", self.disagg_power / 1e3, self.presto_power / 1e3),
            ("3-year cost (k$)", self.disagg_cost / 1e3, self.presto_cost / 1e3),
            (
                "rejected @ half pool",
                self.rejected_at_half_disagg,
                self.rejected_at_half_presto,
            ),
        ]

    def columns(self) -> List[str]:
        return ["metric", "Disagg (CPU cores)", "PreSto (SmartSSDs)"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=f"Fleet scenario: {self.num_jobs} concurrent 8-GPU training jobs",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("abl-fleet", title="Fleet: multi-job scheduling", kind="ablation", order=260)
def run(
    mix: Tuple[Tuple[str, int], ...] = DEFAULT_MIX,
    calibration: Calibration = CALIBRATION,
) -> MultiJobResult:
    """Size and compare the two fleets for one job mix."""
    jobs = build_jobs(mix)

    def disagg_factory(spec):
        return DisaggCpuSystem(spec, calibration)

    def presto_factory(spec):
        return PreStoSystem(spec, calibration)

    results = {}
    for name, factory in (("disagg", disagg_factory), ("presto", presto_factory)):
        sizing = FleetScheduler(factory, pool_capacity=10**9)
        pool = sizing.min_pool_for(jobs)
        full = FleetScheduler(factory, pool_capacity=pool).schedule(jobs)
        half = FleetScheduler(factory, pool_capacity=max(pool // 2, 1)).schedule(jobs)
        results[name] = (pool, full, half)

    disagg_pool, disagg_full, disagg_half = results["disagg"]
    presto_pool, presto_full, presto_half = results["presto"]
    return MultiJobResult(
        num_jobs=len(jobs),
        disagg_pool=disagg_pool,
        presto_pool=presto_pool,
        disagg_power=disagg_full.power_watts,
        presto_power=presto_full.power_watts,
        disagg_cost=cost_breakdown(
            disagg_full.capex, disagg_full.power_watts, calibration=calibration
        ).total,
        presto_cost=cost_breakdown(
            presto_full.capex, presto_full.power_watts, calibration=calibration
        ).total,
        rejected_at_half_disagg=len(disagg_half.rejected_jobs),
        rejected_at_half_presto=len(presto_half.rejected_jobs),
        half_pool_utilization_disagg=disagg_half.utilization,
        half_pool_utilization_presto=presto_half.utilization,
    )

"""repro — a reproduction of PreSto (ISCA 2024).

PreSto is an in-storage data preprocessing system for training
recommendation models (Lee, Kim, Rhu; ISCA 2024).  This package provides:

* a functional RecSys preprocessing library (columnar storage, the
  Bucketize / SigridHash / Log operators, train-ready mini-batch formats);
* calibrated performance models for CPU-centric preprocessing, the PreSto
  SmartSSD accelerator, GPU/FPGA alternatives, networks, and DLRM training;
* a discrete-event simulator coupling preprocessing to training;
* the declarative :mod:`repro.api` layer — ``Scenario``, ``Sweep``,
  ``PreprocessJob``, and a system registry — the single front door for
  constructing and running anything in the repo;
* a shard-parallel execution engine (:mod:`repro.exec`) that runs the real
  Extract -> Transform data plane across a process pool with
  serial-identical output;
* an experiment harness regenerating every table and figure of the paper's
  evaluation, driven by a registry (:data:`repro.api.EXPERIMENT_REGISTRY`)
  with declarative :class:`~repro.api.ExperimentRun` records, an on-disk
  result cache, and a parallel report (see :mod:`repro.experiments.report`
  and ``docs/experiments.md``).

Quick start — one scenario::

    from repro import Scenario

    result = Scenario(model="RM5", system="PreSto", num_gpus=8).run()
    print(result.summary())  # 9 SmartSSDs keep 8 A100s busy

A parallel sweep across design points::

    from repro import Sweep

    sweep = Sweep.grid(models=("RM1", "RM5"), systems=("Disagg", "PreSto"),
                       num_gpus=(1, 8))
    for result in sweep.run():  # multiprocessing; deterministic order
        print(result.summary())

Registering your own design point makes it available to scenarios, sweeps,
the CLI, and the experiment harness at once::

    from repro import PreStoSystem, register_system

    @register_system("PreSto-Gen2")
    class PreStoGen2System(PreStoSystem):
        ...

Scenarios round-trip through plain dicts (``to_dict``/``from_dict``) for
config files, and every run returns a uniform :class:`~repro.api.RunResult`
(utilization, throughputs, provisioning, power, CapEx).
"""

from repro.features.specs import (
    DEFAULT_BATCH_SIZE,
    MODEL_NAMES,
    RECSYS_MODELS,
    ModelSpec,
    all_models,
    get_model,
)
from repro.features.minibatch import KeyedJaggedTensor, MiniBatch
from repro.features.synthetic import SyntheticTableGenerator, generate_raw_table
from repro.ops.pipeline import OpCounts, PreprocessingPipeline
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.core.systems import (
    A100PoolSystem,
    CoLocatedCpuSystem,
    DisaggCpuSystem,
    PreprocessingSystem,
    PreStoSystem,
    PreStoU280System,
    U280PoolSystem,
)
from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.core.endtoend import EndToEndSimulation
from repro.core.provision import ProvisioningPlan, provision
from repro.api import (
    EXPERIMENT_REGISTRY,
    REGISTRY,
    ExperimentResult,
    ExperimentRun,
    PreprocessJob,
    PreprocessRunResult,
    RunResult,
    RunStore,
    Scenario,
    Sweep,
    SystemRegistry,
    available_experiments,
    available_systems,
    get_experiment,
    get_system,
    register_experiment,
    register_system,
    run_experiments,
)
from repro.exec import ShardExecutor

__version__ = "0.3.0"

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "MODEL_NAMES",
    "RECSYS_MODELS",
    "ModelSpec",
    "all_models",
    "get_model",
    "KeyedJaggedTensor",
    "MiniBatch",
    "SyntheticTableGenerator",
    "generate_raw_table",
    "OpCounts",
    "PreprocessingPipeline",
    "CALIBRATION",
    "Calibration",
    "A100PoolSystem",
    "CoLocatedCpuSystem",
    "DisaggCpuSystem",
    "PreprocessingSystem",
    "PreStoSystem",
    "PreStoU280System",
    "U280PoolSystem",
    "CpuPreprocessingWorker",
    "IspPreprocessingWorker",
    "EndToEndSimulation",
    "ProvisioningPlan",
    "provision",
    "REGISTRY",
    "PreprocessJob",
    "PreprocessRunResult",
    "RunResult",
    "Scenario",
    "ShardExecutor",
    "Sweep",
    "SystemRegistry",
    "available_systems",
    "get_system",
    "register_system",
    "EXPERIMENT_REGISTRY",
    "ExperimentResult",
    "ExperimentRun",
    "RunStore",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "run_experiments",
]

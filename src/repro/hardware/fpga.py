"""FPGA parts and resource accounting — reproduces Table II.

The SmartSSD's FPGA is a Kintex UltraScale+ (KU15P-class) device; the
discrete alternative of Section VI-C is an Alveo U280.  Each PreSto unit
(Decode, Bucketize, SigridHash, Log) is modeled as a fixed base block plus a
per-lane (processing element) cost.  With the default SmartSSD lane counts
from :mod:`repro.hardware.calibration`, the resulting utilization matches
Table II; scaling lanes (e.g. the U280's 2x configuration) re-derives
utilization on the larger part and raises :class:`~repro.errors.
CapacityError` if a configuration does not fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import CapacityError
from repro.hardware.calibration import CALIBRATION, Calibration

RESOURCE_KINDS = ("LUT", "REG", "BRAM", "URAM", "DSP")


@dataclass(frozen=True)
class FpgaPart:
    """Capacity of one FPGA device."""

    name: str
    lut: int
    reg: int
    bram: int
    uram: int
    dsp: int
    clock_hz: float

    def capacity(self) -> Dict[str, int]:
        """Resource kind -> available count."""
        return {
            "LUT": self.lut,
            "REG": self.reg,
            "BRAM": self.bram,
            "URAM": self.uram,
            "DSP": self.dsp,
        }


#: SmartSSD's FPGA (Kintex UltraScale+ KU15P).
SMARTSSD_FPGA = FpgaPart(
    name="SmartSSD (KU15P)",
    lut=522_720,
    reg=1_045_440,
    bram=984,
    uram=128,
    dsp=1_968,
    clock_hz=223e6,
)

#: Alveo U280 datacenter card.
U280_FPGA = FpgaPart(
    name="Alveo U280",
    lut=1_303_680,
    reg=2_607_360,
    bram=2_016,
    uram=960,
    dsp=9_024,
    clock_hz=300e6,
)


@dataclass(frozen=True)
class UnitResources:
    """Resource cost of one PreSto unit: base block + per-lane cost."""

    name: str
    base: Dict[str, int]
    per_lane: Dict[str, int]

    def usage(self, lanes: int) -> Dict[str, int]:
        """Absolute resource usage with ``lanes`` processing elements."""
        if lanes < 0:
            raise CapacityError(f"{self.name}: negative lane count")
        if lanes == 0:
            return {kind: 0 for kind in RESOURCE_KINDS}
        return {
            kind: self.base.get(kind, 0) + lanes * self.per_lane.get(kind, 0)
            for kind in RESOURCE_KINDS
        }


def _unit(name: str, totals: Dict[str, int], lanes: int) -> UnitResources:
    """Split a unit's Table II absolute usage into base + per-lane parts.

    The base block (control, buffering, AXI plumbing) takes ~30% of the
    total; the datapath lanes split the remainder evenly.  The base is
    derived as ``total - lanes * per_lane`` so the default configuration
    reconstructs Table II exactly.
    """
    per_lane = {
        kind: int(round(0.70 * count / max(lanes, 1))) for kind, count in totals.items()
    }
    base = {
        kind: count - max(lanes, 1) * per_lane[kind] for kind, count in totals.items()
    }
    return UnitResources(name=name, base=base, per_lane=per_lane)


def _from_percent(pct: Dict[str, float]) -> Dict[str, int]:
    cap = SMARTSSD_FPGA.capacity()
    return {kind: int(round(cap[kind] * pct.get(kind, 0.0) / 100.0)) for kind in RESOURCE_KINDS}


# Absolute resource budgets back-solved from Table II's utilization
# percentages on the SmartSSD part, at the default lane configuration.
_DEFAULT_LANES = {
    "Decode": 1,
    "Bucketize": CALIBRATION.accel_bucketize_lanes,
    "SigridHash": CALIBRATION.accel_hash_lanes,
    "Log": CALIBRATION.accel_log_lanes,
}

#: PreSto units with Table II resource budgets (SmartSSD configuration).
PRESTO_UNITS: Dict[str, UnitResources] = {
    "Decode": _unit(
        "Decode",
        _from_percent({"LUT": 18.84, "REG": 8.49, "BRAM": 25.08}),
        _DEFAULT_LANES["Decode"],
    ),
    "Bucketize": _unit(
        "Bucketize",
        _from_percent({"LUT": 7.88, "REG": 4.28, "BRAM": 6.19, "URAM": 27.59}),
        _DEFAULT_LANES["Bucketize"],
    ),
    "SigridHash": _unit(
        "SigridHash",
        _from_percent({"LUT": 23.11, "REG": 12.47, "BRAM": 11.89, "DSP": 19.19}),
        _DEFAULT_LANES["SigridHash"],
    ),
    "Log": _unit(
        "Log",
        _from_percent({"LUT": 4.18, "REG": 2.79, "BRAM": 4.89, "DSP": 10.62}),
        _DEFAULT_LANES["Log"],
    ),
}

#: unit name -> (Table II row, synthesized frequency) for reporting
UNIT_ORDER: List[str] = ["Decode", "Bucketize", "SigridHash", "Log"]


def resource_table(
    part: FpgaPart = SMARTSSD_FPGA,
    lane_scale: float = 1.0,
    calibration: Calibration = CALIBRATION,
) -> Dict[str, Dict[str, float]]:
    """Utilization (%) of each unit and the total on ``part``.

    ``lane_scale`` multiplies every unit's lane count (the U280 design of
    Section VI-C uses ``lane_scale=2``).  Raises :class:`CapacityError` if
    the configuration exceeds the part.
    """
    if lane_scale <= 0:
        raise CapacityError("lane_scale must be positive")
    capacity = part.capacity()
    table: Dict[str, Dict[str, float]] = {}
    totals = {kind: 0 for kind in RESOURCE_KINDS}
    for name in UNIT_ORDER:
        lanes = max(int(round(_DEFAULT_LANES[name] * lane_scale)), 1)
        usage = PRESTO_UNITS[name].usage(lanes)
        table[name] = {
            kind: 100.0 * usage[kind] / capacity[kind] for kind in RESOURCE_KINDS
        }
        for kind in RESOURCE_KINDS:
            totals[kind] += usage[kind]
    overflow = [kind for kind in RESOURCE_KINDS if totals[kind] > capacity[kind]]
    if overflow:
        raise CapacityError(
            f"configuration exceeds {part.name} capacity for {overflow}"
        )
    table["Total"] = {
        kind: 100.0 * totals[kind] / capacity[kind] for kind in RESOURCE_KINDS
    }
    return table


def fits(part: FpgaPart, lane_scale: float = 1.0) -> bool:
    """Whether a lane-scaled PreSto design fits on ``part``."""
    try:
        resource_table(part, lane_scale)
    except CapacityError:
        return False
    return True


def max_lane_scale(part: FpgaPart, limit: int = 64) -> int:
    """Largest integer lane scale that still fits on ``part``."""
    best = 0
    for scale in range(1, limit + 1):
        if fits(part, scale):
            best = scale
    if best == 0:
        raise CapacityError(f"PreSto does not fit on {part.name} at any scale")
    return best

"""Energy-efficiency analysis (Figure 15(a), Figure 16 right axis).

Both compared systems sustain the same preprocessing throughput (the GPUs'
demand), so energy-efficiency — useful samples per joule — differs only
through preprocessing-side power.  performance/Watt for Figure 16 compares
single devices at their own throughputs.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def energy_efficiency(throughput: float, power_watts: float) -> float:
    """Samples per joule: throughput (samples/s) over power (W)."""
    if throughput < 0:
        raise ConfigurationError("throughput must be non-negative")
    if power_watts <= 0:
        raise ConfigurationError("power must be positive")
    return throughput / power_watts


def preprocessing_energy_per_epoch(
    power_watts: float, num_samples: float, throughput: float
) -> float:
    """Joules to preprocess one epoch of ``num_samples`` at ``throughput``."""
    if throughput <= 0:
        raise ConfigurationError("throughput must be positive")
    if num_samples < 0 or power_watts < 0:
        raise ConfigurationError("inputs must be non-negative")
    return power_watts * (num_samples / throughput)

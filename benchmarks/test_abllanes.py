"""Benchmark: ablation/sensitivity study repro.experiments.abl_lane_sweep."""

from conftest import assert_claims, report

from repro.experiments import abl_lane_sweep


def test_abllanes(benchmark):
    """Time the abl_lane_sweep study and verify its expected-shape claims."""
    result = benchmark(abl_lane_sweep.run)
    report(result)
    assert_claims(result)

"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``report``          — run every experiment + ablation, print the full
                        paper-vs-measured report and claims scoreboard;
* ``list``            — list available experiment ids;
* ``run <id> [...]``  — run one or more experiments by id (e.g. ``fig12``,
                        ``table2``, ``abl-lanes``) and print their tables;
* ``run --model RM5 --system PreSto [--gpus N]`` — run one declarative
                        scenario through the :mod:`repro.api` front door;
* ``sweep``           — run a scenario grid (models x systems x gpus) in
                        parallel and tabulate the results;
* ``systems``         — list registered system design points;
* ``provision <model> [--gpus N]`` — print the T/P provisioning of every
                        system design point for one Table I model;
* ``preprocess``      — actually run the sharded preprocessing data plane
                        (write -> read -> transform across a process pool)
                        for one model and print the throughput/digest
                        summary; ``--check`` proves the parallel run is
                        byte-identical to the serial pipeline;
* ``bench``           — run the kernel/end-to-end microbenchmarks, print the
                        timing table and write ``BENCH_kernels.json`` (the
                        repo's recorded perf trajectory; ``--quick`` for a
                        CI-sized smoke run).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.api import (
    REGISTRY,
    PreprocessJob,
    RunResult,
    Scenario,
    Sweep,
    available_systems,
)
from repro.errors import ReproError
from repro.experiments import report as report_mod
from repro.experiments.common import format_table
from repro.features.specs import MODEL_NAMES, get_model

#: short CLI ids -> report keys
COMMAND_IDS: Dict[str, str] = {
    "fig3": "Figure 3",
    "fig4": "Figure 4",
    "fig5": "Figure 5",
    "fig6": "Figure 6",
    "table1": "Table I",
    "table2": "Table II",
    "fig11": "Figure 11",
    "fig12": "Figure 12",
    "fig13": "Figure 13",
    "fig14": "Figure 14",
    "fig15": "Figure 15",
    "fig16": "Figure 16",
    "fig17": "Figure 17",
    "abl-row": "Ablation: row vs columnar",
    "abl-pipeline": "Ablation: double buffering",
    "abl-lanes": "Ablation: unit lane sweep",
    "abl-network": "Sensitivity: link speed",
    "abl-contention": "Fleet: network contention",
    "abl-batch": "Sensitivity: batch size",
    "abl-fleet": "Fleet: multi-job scheduling",
}

#: columns of the scenario/sweep result table
RESULT_HEADERS = (
    "model",
    "system",
    "GPUs",
    "workers",
    "util (%)",
    "steady util (%)",
    "supply (samples/s)",
    "power (W)",
    "CapEx ($)",
)


def _result_row(result: RunResult) -> tuple:
    scenario = result.scenario
    return (
        scenario.model,
        scenario.system,
        scenario.num_gpus,
        result.num_workers,
        100.0 * result.gpu_utilization,
        100.0 * result.steady_state_utilization,
        result.preprocessing_throughput,
        result.power_watts,
        result.capex_dollars,
    )


def _print_results(results: List[RunResult], title: str, as_json: bool) -> None:
    if as_json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
        return
    print(format_table(RESULT_HEADERS, [_result_row(r) for r in results], title))


def _parse_overrides(pairs: Optional[List[str]]) -> Dict[str, float]:
    overrides: Dict[str, float] = {}
    for pair in pairs or []:
        name, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--set expects field=value, got {pair!r}")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise SystemExit(f"--set {name}: {value!r} is not a number")
    return overrides


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _runner_for(command_id: str):
    key = COMMAND_IDS.get(command_id)
    if key is None:
        raise SystemExit(
            f"unknown experiment {command_id!r}; try one of: "
            + ", ".join(sorted(COMMAND_IDS))
        )
    runners = {**report_mod.EXPERIMENTS, **report_mod.ABLATIONS}
    return runners[key]


def cmd_report(_: argparse.Namespace) -> int:
    """Full report."""
    print(report_mod.render_report())
    return 0


def cmd_list(_: argparse.Namespace) -> int:
    """Available experiment ids."""
    for short, key in COMMAND_IDS.items():
        print(f"{short:13} -> {key}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run experiments by id, or one declarative scenario via --model/--system."""
    wants_scenario = args.model or args.system
    if wants_scenario:
        if args.ids:
            raise SystemExit("pass experiment ids OR --model/--system, not both")
        if not (args.model and args.system):
            raise SystemExit("scenario runs need both --model and --system")
        try:
            scenario = Scenario(
                model=args.model,
                system=args.system,
                num_gpus=args.gpus,
                num_workers=args.workers,
                num_batches=args.batches,
                queue_capacity=args.queue,
                calibration=_parse_overrides(args.set),
            )
            result = scenario.run()
        except ReproError as exc:
            raise SystemExit(str(exc))
        _print_results([result], f"Scenario {scenario.label}", args.json)
        if not args.json:
            print(result.summary())
        return 0
    if not args.ids:
        raise SystemExit("pass experiment ids (see `list`) or --model/--system")
    for command_id in args.ids:
        result = _runner_for(command_id)()
        print(result.render())
        print()
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a scenario grid (models x systems x gpus) and tabulate it."""
    try:
        sweep = Sweep.grid(
            models=_csv(args.models),
            systems=_csv(args.systems),
            num_gpus=[int(g) for g in _csv(args.gpus)],
            num_batches=args.batches,
            queue_capacity=args.queue,
            calibration=_parse_overrides(args.set),
        )
        results = sweep.run(parallel=not args.serial, processes=args.processes)
    except ReproError as exc:
        raise SystemExit(str(exc))
    _print_results(
        results, f"Sweep: {len(results)} scenarios", args.json
    )
    return 0


def cmd_systems(_: argparse.Namespace) -> int:
    """Registered system design points."""
    for name in available_systems():
        doc = (REGISTRY.get(name).__doc__ or "").strip()
        first_line = doc.splitlines()[0] if doc else "(no description)"
        print(f"{name:14} {first_line}")
    return 0


def cmd_provision(args: argparse.Namespace) -> int:
    """Provisioning summary across system designs."""
    spec = get_model(args.model)
    print(
        f"{spec.name}: provisioning for {args.gpus} GPU(s), "
        f"batch {spec.batch_size}"
    )
    for name in available_systems():
        system = REGISTRY.create(name, spec)
        try:
            plan = system.provision_for(args.gpus)
        except Exception as exc:  # co-located caps, etc.
            print(f"  {name:14} not provisionable: {exc}")
            continue
        print(
            f"  {name:14} {plan.num_workers:5d} workers  "
            f"(P = {plan.worker_throughput:12,.0f} samples/s, "
            f"headroom {plan.headroom:.2f}x)"
        )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Write every experiment's rows to CSV files for plotting."""
    import csv
    import os

    os.makedirs(args.dir, exist_ok=True)
    written = []
    for command_id in args.ids or list(COMMAND_IDS):
        result = _runner_for(command_id)()
        rows = getattr(result, "rows", None)
        if rows is None:
            continue
        path = os.path.join(args.dir, f"{command_id}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            for row in rows():
                writer.writerow(row)
        written.append(path)
    for path in written:
        print(path)
    return 0


def cmd_preprocess(args: argparse.Namespace) -> int:
    """Run the sharded preprocessing data plane and summarize it."""
    try:
        job = PreprocessJob(
            model=args.model,
            num_rows=args.rows,
            num_shards=args.shards,
            processes=args.processes,
            seed=args.seed,
        )
        start = time.perf_counter()
        result = job.run(parallel=not args.serial)
        elapsed = time.perf_counter() - start
    except ReproError as exc:
        raise SystemExit(str(exc))

    check_digest = None
    if args.check and not args.serial:
        check_digest = job.run(parallel=False).digest
        if check_digest != result.digest:
            raise SystemExit(
                f"digest mismatch: parallel {result.digest} != "
                f"serial {check_digest} — sharded run is not serial-identical"
            )

    stats = result.stats
    payload = {
        "job": job.to_dict(),
        "num_shards": stats.num_shards,
        "num_rows": stats.num_rows,
        "file_bytes": stats.file_bytes,
        "bytes_read": stats.bytes_read,
        "transform_elements": stats.transform_elements,
        "elapsed_s": elapsed,
        "rows_per_s": stats.num_rows / elapsed if elapsed else 0.0,
        "digest": result.digest,
        "serial_identical": (
            check_digest == result.digest if check_digest else None
        ),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"Preprocess {job.label}" + (" (serial)" if args.serial else ""))
    print(f"  shards              {stats.num_shards}")
    print(f"  rows                {stats.num_rows}")
    print(f"  transform elements  {stats.transform_elements}")
    print(f"  extract bytes       {stats.bytes_read} of {stats.file_bytes}")
    print(f"  wall time           {elapsed:.3f} s "
          f"({payload['rows_per_s']:,.0f} rows/s)")
    print(f"  digest              {result.digest}")
    if check_digest is not None:
        print("  serial check        byte-identical")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the microbenchmarks; print a table and write the JSON report."""
    from repro import benchmark

    report = benchmark.run_benchmarks(quick=args.quick, seed=args.seed)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(benchmark.render_report(report))
    if args.out:
        benchmark.write_report(report, args.out)
        if not args.json:
            print(f"wrote {args.out}")
    return 0


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batches", type=int, default=200,
                        help="training iterations to simulate")
    parser.add_argument("--queue", type=int, default=16,
                        help="input queue capacity (mini-batches)")
    parser.add_argument("--set", action="append", metavar="FIELD=VALUE",
                        help="calibration override (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="emit RunResult records as JSON")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PreSto (ISCA 2024) reproduction — experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("report", help="run everything, print the full report").set_defaults(
        func=cmd_report
    )
    sub.add_parser("list", help="list experiment ids").set_defaults(func=cmd_list)

    run_parser = sub.add_parser(
        "run", help="run experiments by id, or one scenario via --model/--system"
    )
    run_parser.add_argument("ids", nargs="*", help="experiment ids (see `list`)")
    run_parser.add_argument("--model", help="Table I model for a scenario run")
    run_parser.add_argument("--system", help="registered system (see `systems`)")
    run_parser.add_argument("--gpus", type=int, default=8)
    run_parser.add_argument("--workers", type=int, default=None,
                            help="explicit worker count (default: ceil(T/P))")
    _add_scenario_options(run_parser)
    run_parser.set_defaults(func=cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="run a models x systems x gpus scenario grid in parallel"
    )
    sweep_parser.add_argument("--models", default=",".join(MODEL_NAMES),
                              help="comma-separated Table I models")
    sweep_parser.add_argument("--systems", default="Disagg,PreSto",
                              help="comma-separated registered systems")
    sweep_parser.add_argument("--gpus", default="8",
                              help="comma-separated GPU counts")
    sweep_parser.add_argument("--serial", action="store_true",
                              help="run scenarios serially (default: parallel)")
    sweep_parser.add_argument("--processes", type=int, default=None,
                              help="pool size for parallel execution")
    _add_scenario_options(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    sub.add_parser(
        "systems", help="list registered system design points"
    ).set_defaults(func=cmd_systems)

    export = sub.add_parser("export", help="write experiment rows as CSV")
    export.add_argument("--dir", default="results")
    export.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    export.set_defaults(func=cmd_export)

    prov = sub.add_parser("provision", help="T/P provisioning for one model")
    prov.add_argument("model", choices=MODEL_NAMES + [m.lower() for m in MODEL_NAMES])
    prov.add_argument("--gpus", type=int, default=8)
    prov.set_defaults(func=cmd_provision)

    prep = sub.add_parser(
        "preprocess",
        help="run the sharded preprocessing data plane for one model",
    )
    prep.add_argument("--model", default="RM1",
                      help="Table I model (default RM1)")
    prep.add_argument("--rows", type=int, default=8192,
                      help="synthetic rows to preprocess")
    prep.add_argument("--shards", type=int, default=1,
                      help="number of partitions / mini-batches")
    prep.add_argument("--processes", type=int, default=None,
                      help="pool size (default: CPU count)")
    prep.add_argument("--seed", type=int, default=0,
                      help="synthetic data seed")
    prep.add_argument("--serial", action="store_true",
                      help="run shards inline instead of across a pool")
    prep.add_argument("--check", action="store_true",
                      help="also run serially and assert byte-identical output")
    prep.add_argument("--json", action="store_true",
                      help="emit the summary as JSON")
    prep.set_defaults(func=cmd_preprocess)

    bench = sub.add_parser(
        "bench", help="run kernel microbenchmarks, write BENCH_kernels.json"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small inputs for CI smoke runs")
    bench.add_argument("--seed", type=int, default=0,
                       help="rng seed for benchmark inputs")
    bench.add_argument("--out", default="BENCH_kernels.json",
                       help="JSON report path ('' to skip writing)")
    bench.add_argument("--json", action="store_true",
                       help="print the JSON report instead of the table")
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Render a `repro report --json` payload as a Markdown claims scoreboard.

CI runs a fast registry-driven subset of the report, pipes the JSON here,
and appends the output to ``$GITHUB_STEP_SUMMARY`` — a per-run record of
which paper claims hold, next to the perf trend.  With ``--journal`` the
run's batch journal (the authoritative per-experiment timing record) is
rendered as a second table through :mod:`repro.telemetry`, so the summary
also says how long each experiment took and how hard it was retried.
Report-only: exit code is always 0 when inputs parse; the test suite, not
CI formatting, gates claim regressions.

Usage:
    python benchmarks/claims_summary.py report.json
    python benchmarks/claims_summary.py report.json --journal run.jsonl
    python -m repro.cli report --json | python benchmarks/claims_summary.py -
"""

from __future__ import annotations

import json
import os
import sys
from typing import List, Optional

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"
))

from repro import telemetry  # noqa: E402
from repro.errors import ReproError  # noqa: E402


def render(payload: dict) -> str:
    scoreboard = payload.get("scoreboard", {})
    held = scoreboard.get("held", 0)
    total = scoreboard.get("total", 0)
    lines = [
        "## Paper claims scoreboard",
        "",
        f"**{held}/{total} claims within tolerance**",
        "",
        "| experiment | claim | paper | measured | err | holds |",
        "| --- | --- | ---: | ---: | ---: | :---: |",
    ]
    for experiment in payload.get("experiments", []):
        title = experiment.get("title", experiment.get("id", "?"))
        for claim in experiment.get("claims", []):
            status = "✅" if claim["holds"] else "❌"
            lines.append(
                f"| {title} | {claim['description']} "
                f"| {claim['paper_value']:g} "
                f"| {claim['measured_value']:.4g} "
                f"| {100 * claim['relative_error']:.0f}% "
                f"| {status} |"
            )
    lines.append("")
    return "\n".join(lines)


def render_timings(journal_path: str) -> str:
    """Per-experiment timing table from the run's batch journal."""
    events = telemetry.events_from_batch_journal(journal_path)
    lines = [
        "### Experiment timings (from the run journal)",
        "",
        "| experiment | outcome | attempts | elapsed | cached |",
        "| --- | :---: | ---: | ---: | :---: |",
    ]
    for event in sorted(events, key=lambda e: e.task):
        elapsed = "—" if event.elapsed_s is None else f"{event.elapsed_s:.3f}s"
        mark = "✅" if event.outcome == "ok" else f"❌ {event.outcome}"
        lines.append(
            f"| {event.task} | {mark} | {event.attempts} | {elapsed} "
            f"| {'cache' if event.cached else '—'} |"
        )
    lines.append("")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    args = list(argv[1:])
    journal: Optional[str] = None
    if "--journal" in args:
        at = args.index("--journal")
        try:
            journal = args[at + 1]
        except IndexError:
            print("--journal requires a path", file=sys.stderr)
            return 2
        del args[at:at + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    if args[0] == "-":
        payload = json.load(sys.stdin)
    else:
        with open(args[0]) as handle:
            payload = json.load(handle)
    print(render(payload))
    if journal is not None:
        try:
            print(render_timings(journal))
        except ReproError as exc:
            print(f"claims-summary: cannot read journal: {exc}",
                  file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Benchmark: regenerate the paper's Fig14 via repro.experiments.fig14_provisioning."""

from conftest import assert_claims, report

from repro.experiments import fig14_provisioning


def test_fig14(benchmark):
    """Time the fig14 experiment and verify its paper claims."""
    result = benchmark(fig14_provisioning.run)
    report(result)
    assert_claims(result)

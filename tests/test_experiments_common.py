"""Tests for the experiment-harness plumbing (claims, tables, report)."""

import pytest

from repro.experiments.common import PaperClaim, format_table, model_names, models
from repro.experiments.report import ABLATIONS, EXPERIMENTS
from repro.cli import COMMAND_IDS


class TestPaperClaim:
    def test_exact_match_holds(self):
        assert PaperClaim("x", 10.0, 10.0).holds
        assert PaperClaim("x", 10.0, 10.0).relative_error == 0.0

    def test_tolerance_boundary(self):
        assert PaperClaim("x", 10.0, 13.5, tolerance=0.35).holds
        assert not PaperClaim("x", 10.0, 13.6, tolerance=0.35).holds

    def test_zero_paper_value(self):
        claim = PaperClaim("x", 0.0, 0.5, tolerance=0.4)
        assert claim.relative_error == 0.5
        assert not claim.holds
        assert PaperClaim("x", 0.0, 0.0).holds

    def test_render_marks_status(self):
        assert "[OK ]" in PaperClaim("x", 1.0, 1.0).render()
        assert "[OFF]" in PaperClaim("x", 1.0, 99.0).render()


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [(1, 2.5), (30, 4000.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "4,000" in text  # thousands separator for big floats

    def test_handles_strings_and_zero(self):
        text = format_table(["x"], [("hello",), (0.0,)])
        assert "hello" in text
        assert "0" in text


class TestHarnessConsistency:
    def test_models_order(self):
        assert model_names() == ["RM1", "RM2", "RM3", "RM4", "RM5"]
        assert [m.name for m in models()] == model_names()

    # the hand-maintained dicts are now deprecated live views of the
    # experiment registry; they must keep behaving like the old dicts
    # (same keys, runnable values) while warning on use

    def test_cli_ids_cover_every_experiment(self):
        """Every report entry is reachable from the CLI and vice versa."""
        with pytest.deprecated_call():
            report_keys = set(EXPERIMENTS) | set(ABLATIONS)
        with pytest.deprecated_call():
            cli_keys = set(COMMAND_IDS.values())
        assert cli_keys == report_keys

    def test_no_duplicate_report_keys(self):
        with pytest.deprecated_call():
            assert not set(EXPERIMENTS) & set(ABLATIONS)

    def test_deprecated_views_still_run_experiments(self):
        with pytest.deprecated_call():
            runner = EXPERIMENTS["Table I"]
        assert runner().matches_paper

    def test_deprecated_views_raise_keyerror(self):
        with pytest.deprecated_call():
            with pytest.raises(KeyError):
                EXPERIMENTS["Figure 99"]
        with pytest.deprecated_call():
            with pytest.raises(KeyError):
                COMMAND_IDS["fig99"]

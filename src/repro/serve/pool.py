"""Persistent worker pool draining the bounded job queue.

A fixed crew of worker threads pulls job ids off a
:class:`~repro.serve.queue.BoundedJobQueue` and pushes each through the
``runner`` callable (the service's staged ShardExecutor path).  The pool
owns three responsibilities the batch executor never needed:

* **retry with backoff** — a runner that raises an ``Exception`` is retried
  up to ``max_retries`` extra times, sleeping ``backoff_s * factor**n``
  between attempts; only then is the job reported failed;
* **worker replacement** — a worker that *dies* (a ``BaseException`` such
  as ``SystemExit`` escaping the runner, the stand-in for a crashed
  process) reports the in-flight job as failed and is replaced by a fresh
  worker, so one poisoned job can never hang the queue;
* **graceful drain** — :meth:`drain` closes the queue and waits until every
  queued and in-flight job has reached a terminal report; :meth:`stop`
  instead cancels the queued tail explicitly and waits only for in-flight
  work.  Either way no job vanishes silently;
* **hung-job defense** — with ``job_timeout_s`` set, a watchdog thread
  checks every in-flight job against its deadline.  A job that blows it is
  reported failed with :class:`~repro.errors.JobTimeoutError`, its worker
  is *abandoned* (Python threads cannot be killed: the thread is dropped
  from the crew, self-checks on its next safe point, and exits quietly)
  and a fresh worker replaces it immediately — so a wedged stage never
  starves the queue and ``alive_workers`` stays at ``num_workers``.

The pool is deliberately thread- (not process-) based: jobs themselves are
numpy-heavy and the per-job data plane can still fan out across processes,
while the pool layer stays cheap to start, easy to observe, and able to
share the in-memory lifecycle store.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import JobTimeoutError, QueueClosedError, ServeError
from repro.faults.injector import fault_point
from repro.serve.queue import BoundedJobQueue

#: runner(item, attempt) -> result; raising Exception triggers a retry
JobRunner = Callable[[Any, int], Any]


class WorkerPool:
    """Threaded consumers with per-job retry/backoff and self-replacement."""

    def __init__(
        self,
        queue: BoundedJobQueue,
        runner: JobRunner,
        num_workers: int = 2,
        max_retries: int = 1,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        on_done: Optional[Callable[[Any, Any, Optional[BaseException]], None]] = None,
        on_retry: Optional[Callable[[Any, int, Exception, float], None]] = None,
        on_worker_death: Optional[
            Callable[[str, Any, BaseException], None]
        ] = None,
        job_timeout_s: Optional[float] = None,
        watchdog_interval_s: float = 0.05,
        on_timeout: Optional[Callable[[str, Any, float], None]] = None,
    ) -> None:
        if not isinstance(num_workers, int) or num_workers <= 0:
            raise ServeError(
                f"num_workers must be a positive int, got {num_workers!r}"
            )
        if not isinstance(max_retries, int) or max_retries < 0:
            raise ServeError(
                f"max_retries must be a non-negative int, got {max_retries!r}"
            )
        if backoff_s < 0 or backoff_factor <= 0:
            raise ServeError("backoff_s must be >= 0 and backoff_factor > 0")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ServeError(
                f"job_timeout_s must be positive, got {job_timeout_s!r}"
            )
        if watchdog_interval_s <= 0:
            raise ServeError(
                f"watchdog_interval_s must be positive, "
                f"got {watchdog_interval_s!r}"
            )
        self.queue = queue
        self.num_workers = num_workers
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self._runner = runner
        self._sleep = sleep
        self._on_done = on_done or (lambda item, result, error: None)
        self._on_retry = on_retry or (lambda item, attempt, error, delay: None)
        self._on_worker_death = on_worker_death or (
            lambda worker, item, error: None
        )
        self.job_timeout_s = job_timeout_s
        self.watchdog_interval_s = watchdog_interval_s
        self._on_timeout = on_timeout or (lambda worker, item, elapsed: None)
        self._lock = threading.Lock()
        self._threads: Dict[str, threading.Thread] = {}
        #: worker name -> (item, monotonic start of the current attempt run)
        self._inflight: Dict[str, Any] = {}
        #: workers the watchdog gave up on; they self-check and exit quietly
        self._abandoned: set = set()
        self._names = itertools.count()
        self._stopping = False
        self._started = False
        self._replaced = 0
        self._timeouts = 0
        self._watchdog: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the initial crew and, if deadlined, the watchdog."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for _ in range(self.num_workers):
                self._spawn_locked()
            if self.job_timeout_s is not None:
                self._watchdog = threading.Thread(
                    target=self._watchdog_main,
                    name="serve-watchdog",
                    daemon=True,
                )
                self._watchdog.start()

    def _spawn_locked(self) -> None:
        name = f"serve-worker-{next(self._names)}"
        thread = threading.Thread(
            target=self._worker_main, args=(name,), name=name, daemon=True
        )
        self._threads[name] = thread
        thread.start()

    @property
    def workers_replaced(self) -> int:
        """How many dead workers the pool has replaced so far."""
        with self._lock:
            return self._replaced

    @property
    def jobs_timed_out(self) -> int:
        """How many in-flight jobs the watchdog has failed so far."""
        with self._lock:
            return self._timeouts

    def alive_workers(self) -> int:
        """Live crew members — abandoned (hung) workers don't count."""
        with self._lock:
            return sum(1 for t in self._threads.values() if t.is_alive())

    def inflight(self) -> Dict[str, Any]:
        """worker name -> item currently being executed."""
        with self._lock:
            return {name: item for name, (item, _) in self._inflight.items()}

    # -- worker body ---------------------------------------------------------

    def _worker_main(self, name: str) -> None:
        current = None
        try:
            while True:
                try:
                    item = self.queue.get()
                except QueueClosedError:
                    return
                current = item
                with self._lock:
                    self._inflight[name] = (item, time.monotonic())
                # fault point: the worker dies right after pickup (the
                # crashed-process stand-in); lands in the except below
                fault_point("worker-crash", worker=name, item=item)
                # _run_one clears the in-flight entry on every return: a
                # terminal report claims it, and abandonment means the
                # watchdog already took it.  If _run_one raises instead,
                # the entry survives for the except below to claim.
                self._run_one(name, item)
                if self._is_abandoned(name):
                    return  # the watchdog replaced us; exit quietly
                current = None
        except BaseException as death:  # worker crash: report + replace
            claimed = self._claim_report(name)
            if not claimed and self._is_abandoned(name):
                return  # the watchdog already reported + replaced us
            self._on_worker_death(name, current, death)
            if claimed and current is not None:
                self._on_done(current, None, death)
            with self._lock:
                if not self._stopping:
                    self._replaced += 1
                    self._spawn_locked()

    def _is_abandoned(self, name: str) -> bool:
        with self._lock:
            return name in self._abandoned

    def _claim_report(self, name: str) -> bool:
        """Atomically claim the right to issue the terminal report.

        The claim token is this worker's in-flight entry: exactly one of
        the worker (here) and the watchdog (popping the entry when it
        abandons the worker in :meth:`_check_deadlines`) can take it, so a
        job finishing in the same instant its deadline expires still gets
        exactly one terminal ``on_done`` report.
        """
        with self._lock:
            if name in self._abandoned:
                return False
            return self._inflight.pop(name, None) is not None

    def _run_one(self, name: str, item: Any) -> None:
        """Run one job to a terminal report, retrying transient failures.

        Every terminal report is gated on :meth:`_claim_report`: once the
        watchdog has abandoned this worker and issued the job's terminal
        :class:`JobTimeoutError` report, a late success or failure from
        the stuck thread must go nowhere.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                result = self._runner(item, attempt)
            except Exception as error:
                if attempt > self.max_retries:
                    if self._claim_report(name):
                        self._on_done(item, None, error)
                    return
                if self._is_abandoned(name):
                    return
                delay = self.backoff_s * self.backoff_factor ** (attempt - 1)
                self._on_retry(item, attempt, error, delay)
                if delay > 0:
                    self._sleep(delay)
                if self._is_abandoned(name):
                    return
                continue
            if self._claim_report(name):
                self._on_done(item, result, None)
            return

    # -- watchdog ------------------------------------------------------------

    def _watchdog_main(self) -> None:
        while not self._watchdog_stop.wait(self.watchdog_interval_s):
            self._check_deadlines()

    def _check_deadlines(self) -> None:
        """Fail every in-flight job past its deadline; replace its worker."""
        assert self.job_timeout_s is not None
        now = time.monotonic()
        expired = []
        with self._lock:
            for name, (item, started) in list(self._inflight.items()):
                elapsed = now - started
                if elapsed < self.job_timeout_s:
                    continue
                # abandon: drop the stuck thread from the crew (it will
                # self-check and exit), replace it, and report outside the
                # lock — the on_done callback may take the service's lock
                self._inflight.pop(name)
                self._abandoned.add(name)
                self._threads.pop(name, None)
                self._timeouts += 1
                if not self._stopping:
                    self._replaced += 1
                    self._spawn_locked()
                expired.append((name, item, elapsed))
        for name, item, elapsed in expired:
            self._on_timeout(name, item, elapsed)
            self._on_done(
                item,
                None,
                JobTimeoutError(
                    f"job exceeded its {self.job_timeout_s:.1f}s deadline "
                    f"({elapsed:.1f}s elapsed); worker {name} abandoned "
                    f"and replaced"
                ),
            )

    # -- shutdown ------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Close the queue and finish every queued + in-flight job.

        Dead workers are still replaced while draining, so the tail of the
        queue completes even if a poison job kills its worker.  Returns
        ``True`` when every worker exited within ``timeout``.
        """
        self.queue.close()
        done = self._join(timeout)
        with self._lock:
            self._stopping = True
        self._halt_watchdog()
        return done

    def stop(self, timeout: Optional[float] = None) -> List[Any]:
        """Cancel the queued tail, finish in-flight jobs, and shut down.

        Returns the queued items that were cancelled (never executed) so
        the caller can mark them explicitly — nothing disappears.
        """
        cancelled = self.queue.cancel(lambda item: True)
        self.queue.close()
        self._join(timeout)
        with self._lock:
            self._stopping = True
        self._halt_watchdog()
        return cancelled

    def _halt_watchdog(self) -> None:
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
            self._watchdog = None

    def _join(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                threads = [t for t in self._threads.values() if t.is_alive()]
            if not threads:
                return True
            for thread in threads:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                thread.join(remaining)
            # loop again: a worker may have died and been replaced mid-join

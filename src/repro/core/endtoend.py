"""End-to-end training-pipeline simulation.

Couples a :class:`~repro.core.manager.PreprocessManager` (producer) to a
:class:`~repro.training.trainer.TrainManager` (consumer) through the bounded
input queue of Figure 9 and runs the discrete-event engine.  The emergent
GPU utilization is the paper's headline system metric (Fig. 3's right axis):
when preprocessing supply falls short of ``T``, the trainer starves and
utilization drops below 100%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.systems import PreprocessingSystem

from repro.errors import ConfigurationError
from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.api.registry import REGISTRY
from repro.core.manager import PreprocessManager
from repro.core.worker import PreprocessingWorker
from repro.sim.engine import Engine
from repro.training.trainer import TrainManager


@dataclass(frozen=True)
class PipelineStats:
    """Outcome of one end-to-end simulated training run."""

    spec_name: str
    num_workers: int
    num_batches: int
    wall_time: float
    training_time: float
    wait_time: float
    preprocessing_throughput: float  # samples/s supplied
    training_throughput: float  # samples/s consumed end to end
    first_batch_time: float = 0.0  # pipeline warmup (first-batch latency)

    @property
    def gpu_utilization(self) -> float:
        """Fraction of wall time the GPU spent training."""
        if self.wall_time <= 0:
            return 0.0
        return min(self.training_time / self.wall_time, 1.0)

    @property
    def steady_state_utilization(self) -> float:
        """Utilization measured after the pipeline warmup: production runs
        last hours, so the one-batch fill latency amortizes away."""
        span = self.wall_time - self.first_batch_time
        if span <= 0:
            return 0.0
        return min(self.training_time / span, 1.0)


class EndToEndSimulation:
    """Build and run one preprocessing-feeds-training pipeline.

    Preferred construction names a registered system design point::

        EndToEndSimulation(spec, system="PreSto", num_gpus=8)

    (or passes a :class:`~repro.core.systems.PreprocessingSystem` instance).
    The legacy ``worker_factory`` form still works as a shim for callers
    that predate the :mod:`repro.api` layer.
    """

    def __init__(
        self,
        spec: ModelSpec,
        worker_factory: Optional[Callable[[], PreprocessingWorker]] = None,
        num_gpus: int = 1,
        calibration: Calibration = CALIBRATION,
        queue_capacity: int = 16,
        system: Union[str, "PreprocessingSystem", None] = None,
    ) -> None:
        if (worker_factory is None) == (system is None):
            raise ConfigurationError(
                "pass exactly one of worker_factory or system"
            )
        if system is not None:
            if isinstance(system, str):
                system = REGISTRY.create(system, spec, calibration)
            worker_factory = system.make_worker
        self.system = system
        self.spec = spec
        self.calibration = calibration
        self.preprocess_manager = PreprocessManager(spec, worker_factory)
        self.train_manager = TrainManager(
            spec,
            num_gpus=num_gpus,
            calibration=calibration,
            input_queue_capacity=queue_capacity,
        )

    def run(
        self,
        num_batches: int,
        num_workers: Optional[int] = None,
        provision_to_demand: bool = False,
    ) -> PipelineStats:
        """Simulate ``num_batches`` training iterations.

        ``provision_to_demand=True`` runs the full Figure 9 flow: measure T,
        plan ceil(T/P) workers, then launch.
        """
        if num_batches <= 0:
            raise ConfigurationError("num_batches must be positive")
        engine = Engine()
        queue = self.train_manager.make_input_queue()

        demand = self.train_manager.measure_max_throughput()
        if provision_to_demand:
            launch_kwargs = {"training_throughput": demand}
        elif num_workers is not None:
            launch_kwargs = {"num_workers": num_workers}
        else:
            raise ConfigurationError(
                "pass num_workers or provision_to_demand=True"
            )
        producers = self.preprocess_manager.launch(
            engine, queue, num_batches, **launch_kwargs
        )
        trainer_process = engine.spawn(
            "train-manager",
            self.train_manager.run(engine, queue, num_batches),
        )
        engine.run()
        if not trainer_process.finished:
            raise ConfigurationError("trainer did not finish; broken pipeline")

        stats = self.train_manager.stats
        wall = stats.finish_time
        samples = num_batches * self.spec.batch_size
        consumed_time = wall if wall > 0 else 1.0
        # Supply is what the preprocess manager actually produced over the
        # time its workers were active — not a copy of the training rate.
        # Well-fed producers finish (and stop being measured) before the
        # trainer drains the queue, so supply can legitimately exceed demand.
        produced_samples = (
            self.preprocess_manager.total_batches_produced * self.spec.batch_size
        )
        production_span = max(
            (p.finish_time for p in producers if p.finish_time is not None),
            default=wall,
        )
        if production_span <= 0:
            production_span = consumed_time
        return PipelineStats(
            spec_name=self.spec.name,
            num_workers=len(self.preprocess_manager.workers),
            num_batches=num_batches,
            wall_time=wall,
            training_time=stats.training_time,
            wait_time=stats.wait_time,
            preprocessing_throughput=produced_samples / production_span,
            training_throughput=samples / consumed_time,
            first_batch_time=stats.first_batch_time,
        )

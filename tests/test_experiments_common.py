"""Tests for the experiment-harness plumbing (claims, tables, report)."""

from repro.api import EXPERIMENT_REGISTRY
from repro.experiments.common import PaperClaim, format_table, model_names, models


class TestPaperClaim:
    def test_exact_match_holds(self):
        assert PaperClaim("x", 10.0, 10.0).holds
        assert PaperClaim("x", 10.0, 10.0).relative_error == 0.0

    def test_tolerance_boundary(self):
        assert PaperClaim("x", 10.0, 13.5, tolerance=0.35).holds
        assert not PaperClaim("x", 10.0, 13.6, tolerance=0.35).holds

    def test_zero_paper_value(self):
        claim = PaperClaim("x", 0.0, 0.5, tolerance=0.4)
        assert claim.relative_error == 0.5
        assert not claim.holds
        assert PaperClaim("x", 0.0, 0.0).holds

    def test_render_marks_status(self):
        assert "[OK ]" in PaperClaim("x", 1.0, 1.0).render()
        assert "[OFF]" in PaperClaim("x", 1.0, 99.0).render()


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [(1, 2.5), (30, 4000.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "4,000" in text  # thousands separator for big floats

    def test_handles_strings_and_zero(self):
        text = format_table(["x"], [("hello",), (0.0,)])
        assert "hello" in text
        assert "0" in text


class TestHarnessConsistency:
    def test_models_order(self):
        assert model_names() == ["RM1", "RM2", "RM3", "RM4", "RM5"]
        assert [m.name for m in models()] == model_names()

    def test_registry_titles_unique(self):
        """Figure/table/ablation titles never collide across kinds."""
        paper = set(EXPERIMENT_REGISTRY.titles("figure")) | set(
            EXPERIMENT_REGISTRY.titles("table")
        )
        ablations = set(EXPERIMENT_REGISTRY.titles("ablation"))
        assert not paper & ablations
        titles = list(EXPERIMENT_REGISTRY.titles())
        assert len(titles) == len(set(titles))

"""Job sources and the source watcher — continuous ingestion for the daemon.

A *source* turns the outside world into :class:`~repro.api.PreprocessJob`s:
a watched spool directory where producers drop job-spec JSON files, a
synthetic generator standing in for live inference traffic, or any
user-registered plugin.  The :class:`SourceWatcher` polls every attached
source on a fixed cadence and submits what it finds — but only up to the
queue's free capacity, so ingestion cooperates with backpressure instead of
blocking the poll loop or flooding the pool.

Sources register by kind with :data:`SOURCE_REGISTRY` (the same shape as the
system and experiment registries), so ``repro serve`` can construct them
from the command line and user plugins slot in without touching the daemon::

    @register_source("kafkaesque")
    class MyQueueSource(JobSource):
        def take(self, limit): ...
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.preprocess import PreprocessJob
from repro.errors import ConfigurationError, QueueClosedError, ReproError
from repro.serve.records import JobRecord


class JobSource:
    """One stream of incoming preprocessing jobs.

    Subclasses implement :meth:`take`, returning at most ``limit`` new jobs
    per call; the watcher calls it with the queue's current free capacity,
    so a source never has to handle rejection — work it holds back is simply
    picked up on a later poll.
    """

    #: label recorded on every JobRecord this source submits
    name: str = "source"

    def take(self, limit: int) -> List[PreprocessJob]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class DirectoryJobSource(JobSource):
    """Watch a directory for dropped job-spec JSON files.

    Producers attach by writing ``PreprocessJob.to_dict()`` JSON as
    ``*.json`` files into the directory; each file becomes exactly one job
    (files are remembered by name, oldest name first, and never re-read).
    A file that does not parse as a job is remembered as rejected — loudly
    listed in :attr:`rejected`, never retried, never crashing the watcher.
    """

    def __init__(self, path: str, pattern: str = "*.json") -> None:
        if not path:
            raise ConfigurationError("directory source needs a path")
        self.path = path
        self.pattern = pattern
        self.name = f"watch:{path}"
        self._seen: set = set()
        #: filename -> error for files that were not valid job specs
        self.rejected: Dict[str, str] = {}
        os.makedirs(path, exist_ok=True)

    def take(self, limit: int) -> List[PreprocessJob]:
        jobs: List[PreprocessJob] = []
        for filename in sorted(glob.glob(os.path.join(self.path, self.pattern))):
            if len(jobs) >= limit:
                break
            if filename in self._seen:
                continue
            self._seen.add(filename)
            try:
                with open(filename) as handle:
                    payload = json.load(handle)
                jobs.append(PreprocessJob.from_dict(payload))
            except (ValueError, OSError, ReproError) as exc:
                self.rejected[filename] = str(exc)
        return jobs


class SyntheticJobSource(JobSource):
    """Emit ``count`` synthetic-table jobs, one seed per job.

    The stand-in for continuous inference traffic: every emitted job asks
    for the same model/rows/shards shape but a distinct ``seed``, so the
    daemon preprocesses a stream of distinct tables.
    """

    def __init__(
        self,
        model: str = "RM1",
        num_rows: int = 8192,
        num_shards: int = 1,
        count: int = 1,
        seed: int = 0,
    ) -> None:
        if not isinstance(count, int) or count <= 0:
            raise ConfigurationError(
                f"synthetic source count must be a positive int, got {count!r}"
            )
        # validate the shape eagerly — a bad spec should fail at attach time
        self._template = PreprocessJob(
            model=model, num_rows=num_rows, num_shards=num_shards, seed=seed
        )
        self.count = count
        self.emitted = 0
        self.name = f"synthetic:{self._template.model}"

    def take(self, limit: int) -> List[PreprocessJob]:
        jobs = []
        while self.emitted < self.count and len(jobs) < limit:
            jobs.append(
                dataclasses.replace(
                    self._template, seed=self._template.seed + self.emitted
                )
            )
            self.emitted += 1
        return jobs

    @property
    def exhausted(self) -> bool:
        return self.emitted >= self.count


# --------------------------------------------------------------------------
# source registry (plugin surface)
# --------------------------------------------------------------------------


class SourceRegistry:
    """kind -> factory catalog of job source plugins."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., JobSource]] = {}

    def register(
        self,
        kind: str,
        factory: Callable[..., JobSource],
        replace: bool = False,
    ) -> Callable[..., JobSource]:
        if not isinstance(kind, str) or not kind.strip():
            raise ConfigurationError("source kind must be a non-empty string")
        if kind in self._factories and not replace:
            raise ConfigurationError(
                f"source kind {kind!r} is already registered; "
                "pass replace=True to override"
            )
        self._factories[kind] = factory
        return factory

    def unregister(self, kind: str) -> None:
        del self._factories[kind]

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    def create(self, kind: str, **kwargs) -> JobSource:
        if kind not in self._factories:
            raise ConfigurationError(
                f"unknown source kind {kind!r}; registered: "
                f"{', '.join(self.kinds()) or 'none'}"
            )
        return self._factories[kind](**kwargs)


#: the global source catalog ``repro serve`` constructs from
SOURCE_REGISTRY = SourceRegistry()


def register_source(kind: str, replace: bool = False):
    """Class decorator registering a :class:`JobSource` under ``kind``."""

    def decorate(factory: Callable[..., JobSource]):
        return SOURCE_REGISTRY.register(kind, factory, replace=replace)

    return decorate


SOURCE_REGISTRY.register("directory", DirectoryJobSource)
SOURCE_REGISTRY.register("synthetic", SyntheticJobSource)


# --------------------------------------------------------------------------
# the watcher
# --------------------------------------------------------------------------


class SourceWatcher:
    """Poll attached sources and feed the service, capacity-aware.

    Each tick asks the queue how many slots are free and offers exactly
    that many to the sources (round-robin, attachment order) — cooperative
    backpressure: a full queue simply pauses ingestion until workers catch
    up.  Sources can be attached and detached while the watcher runs.
    """

    def __init__(
        self,
        submit: Callable[[PreprocessJob, str], JobRecord],
        free_slots: Callable[[], int],
        poll_interval: float = 0.2,
    ) -> None:
        if poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        self._submit = submit
        self._free_slots = free_slots
        self.poll_interval = poll_interval
        self._sources: List[JobSource] = []
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    def attach(self, source: JobSource) -> None:
        with self._lock:
            self._sources.append(source)
        self._wake.set()

    def detach(self, source: JobSource) -> None:
        with self._lock:
            self._sources.remove(source)

    def sources(self) -> List[JobSource]:
        with self._lock:
            return list(self._sources)

    def poll_once(self) -> int:
        """One tick: offer free queue slots to each source; submitted count."""
        submitted = 0
        for source in self.sources():
            free = self._free_slots()
            if free <= 0:
                break
            for job in source.take(free):
                try:
                    self._submit(job, source.name)
                    submitted += 1
                except QueueClosedError:
                    return submitted
        return submitted

    # -- background loop -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stopped = False
        self._thread = threading.Thread(
            target=self._loop, name="serve-watcher", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        self._stopped = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stopped:
            self.poll_once()
            self._wake.wait(self.poll_interval)
            self._wake.clear()

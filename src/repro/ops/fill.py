"""Missing-value handling for raw feature columns.

Raw logged data has holes: dense features with no observation for a user and
sparse features with empty interaction lists.  TorchArrow pipelines run a
``fill_null`` before normalization; these are its equivalents.  Their cost is
part of the "Else" slice in the paper's Figure 5 breakdown.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import OpError


def fill_dense(values: np.ndarray, fill_value: float = 0.0) -> np.ndarray:
    """Replace NaNs in a dense column with ``fill_value`` (float32 out)."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise OpError(f"fill_dense input must be 1-D, got shape {values.shape}")
    out = values.astype(np.float32, copy=True)
    nan_mask = np.isnan(out)
    if nan_mask.any():
        out[nan_mask] = fill_value
    return out


def fill_sparse(
    lengths: np.ndarray, values: np.ndarray, default_id: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Give every empty sparse row a single ``default_id`` entry.

    Embedding lookups need at least one index per (sample, feature) for the
    pooled reduction to be defined; TorchRec pads empty bags the same way.
    """
    lengths = np.asarray(lengths, dtype=np.int32)
    values = np.asarray(values, dtype=np.int64)
    if lengths.ndim != 1 or values.ndim != 1:
        raise OpError("fill_sparse inputs must be 1-D")
    if int(lengths.sum()) != len(values):
        raise OpError("lengths do not sum to len(values)")
    empty = lengths == 0
    if not empty.any():
        return lengths, values
    new_lengths = lengths.copy()
    new_lengths[empty] = 1
    out = np.empty(int(new_lengths.sum()), dtype=np.int64)
    # positions of each row's slice in the output
    out_offsets = np.concatenate(([0], np.cumsum(new_lengths)))
    in_offsets = np.concatenate(([0], np.cumsum(lengths)))
    for row in range(len(lengths)):
        start, stop = out_offsets[row], out_offsets[row + 1]
        if empty[row]:
            out[start] = default_id
        else:
            out[start:stop] = values[in_offsets[row] : in_offsets[row + 1]]
    return new_lengths, out

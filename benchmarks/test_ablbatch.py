"""Benchmark: ablation/sensitivity study repro.experiments.abl_batch_size."""

from conftest import assert_claims, report

from repro.experiments import abl_batch_size


def test_ablbatch(benchmark):
    """Time the abl_batch_size study and verify its expected-shape claims."""
    result = benchmark(abl_batch_size.run)
    report(result)
    assert_claims(result)

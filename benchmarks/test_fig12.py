"""Benchmark: regenerate the paper's Fig12 via repro.experiments.fig12_latency."""

from conftest import assert_claims, report

from repro.experiments import fig12_latency


def test_fig12(benchmark):
    """Time the fig12 experiment and verify its paper claims."""
    result = benchmark(fig12_latency.run)
    report(result)
    assert_claims(result)

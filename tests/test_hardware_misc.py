"""Tests for the cache/utilization model, GPU preprocessing model, and
power models."""

import pytest

from repro.features.specs import get_model
from repro.hardware.cache import CacheModel, NODE_MEM_BW, OPERATOR_PROFILES
from repro.hardware.calibration import CALIBRATION
from repro.hardware.gpu_preproc import GpuPreprocModel
from repro.hardware.power import DEVICE_POWER, PowerModel


class TestCacheModel:
    @pytest.fixture(scope="class")
    def model(self):
        return CacheModel()

    @pytest.mark.parametrize("op", ["bucketize", "sigridhash", "log"])
    @pytest.mark.parametrize("rm", ["RM1", "RM5"])
    def test_compute_bound_signature(self, model, op, rm):
        """Fig. 6's three claims: high CPU util, <15% memory BW, high LLC."""
        sample = model.sample(op, get_model(rm))
        assert sample.cpu_utilization > 0.8
        assert sample.memory_bw_utilization < 0.15
        assert sample.llc_hit_rate > 0.8

    def test_rm5_drives_more_bandwidth_on_hash(self, model):
        rm1 = model.sample("sigridhash", get_model("RM1"))
        rm5 = model.sample("sigridhash", get_model("RM5"))
        assert rm5.memory_bw_utilization >= rm1.memory_bw_utilization

    def test_bucketize_working_set_fits_llc(self, model):
        profile = OPERATOR_PROFILES["bucketize"]
        assert profile.working_set_bytes(get_model("RM5")) == 4096 * 8

    def test_unknown_op(self, model):
        with pytest.raises(ValueError):
            model.sample("resize", get_model("RM1"))

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            CacheModel(active_cores=0)
        with pytest.raises(ValueError):
            CacheModel(active_cores=64)

    def test_fewer_cores_less_bandwidth(self):
        spec = get_model("RM5")
        full = CacheModel(active_cores=32).sample("log", spec)
        half = CacheModel(active_cores=16).sample("log", spec)
        assert half.memory_bw_utilization == pytest.approx(
            full.memory_bw_utilization / 2
        )

    def test_node_bw_matches_paper(self):
        assert NODE_MEM_BW == pytest.approx(281.6e9)


class TestGpuPreproc:
    def test_kernel_count_scales_with_columns(self):
        model = GpuPreprocModel()
        assert model.kernel_count(get_model("RM5")) > model.kernel_count(
            get_model("RM1")
        )

    def test_kernels_dominate_production_latency(self):
        """Section VI-C: kernel launches are the GPU's Achilles heel."""
        model = GpuPreprocModel()
        stages = model.batch_stages(get_model("RM5"))
        assert stages.kernels > stages.compute
        assert stages.bottleneck == pytest.approx(stages.kernels + stages.compute)

    def test_disaggregation_adds_network(self):
        spec = get_model("RM5")
        pooled = GpuPreprocModel(disaggregated=True).batch_stages(spec)
        local = GpuPreprocModel(disaggregated=False).batch_stages(spec)
        assert pooled.network_in > 0
        assert local.network_in == 0
        assert pooled.latency > local.latency

    def test_throughput_positive(self):
        assert GpuPreprocModel().device_throughput(get_model("RM2")) > 0

    def test_data_movement_accounting(self):
        stages = GpuPreprocModel().batch_stages(get_model("RM3"))
        assert stages.data_movement == pytest.approx(
            stages.network_in + stages.pcie_in + stages.pcie_out + stages.network_out
        )


class TestPowerModel:
    @pytest.fixture(scope="class")
    def power(self):
        return PowerModel()

    def test_disagg_power_linear(self, power):
        assert power.disagg_cpu_power(64) == pytest.approx(
            2 * power.disagg_cpu_power(32)
        )

    def test_disagg_nodes_ceiling(self, power):
        assert power.disagg_cpu_nodes(367) == 12
        assert power.disagg_cpu_nodes(32) == 1
        assert power.disagg_cpu_nodes(33) == 2

    def test_presto_worst_case_matches_paper_quote(self, power):
        """9 units x 25 W = 225 W (Section VI-B)."""
        assert power.presto_power(9, worst_case=True) == pytest.approx(225.0)

    def test_presto_active_includes_host(self, power):
        expected = 9 * CALIBRATION.smartssd_active_power + CALIBRATION.presto_host_power
        assert power.presto_power(9) == pytest.approx(expected)

    def test_accelerator_pool(self, power):
        one = power.accelerator_pool_power("a100", 1)
        two = power.accelerator_pool_power("a100", 2)
        assert two - one == pytest.approx(CALIBRATION.a100_preproc_active_power)

    def test_unknown_device(self, power):
        with pytest.raises(ValueError):
            power.accelerator_pool_power("tpu", 1)

    def test_negative_inputs(self, power):
        with pytest.raises(ValueError):
            power.disagg_cpu_power(-1)
        with pytest.raises(ValueError):
            power.presto_power(-1)
        with pytest.raises(ValueError):
            power.preprocessing_energy(10.0, -1.0)

    def test_energy(self, power):
        assert power.preprocessing_energy(100.0, 60.0) == pytest.approx(6000.0)

    def test_device_table(self):
        assert DEVICE_POWER["smartssd"].tdp == 25.0
        assert DEVICE_POWER["a100"].tdp == 250.0
        assert DEVICE_POWER["u280"].tdp == 225.0

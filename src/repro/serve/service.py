"""The streaming preprocessing service — watcher, queue, pool, lifecycle.

:class:`PreprocessService` is the always-on counterpart of the batch
``repro preprocess`` command.  One instance composes:

* a :class:`~repro.serve.queue.BoundedJobQueue` (explicit backpressure);
* a :class:`~repro.serve.pool.WorkerPool` whose default runner drives the
  existing :class:`~repro.exec.ShardExecutor` partition -> write -> read ->
  transform path with per-stage telemetry;
* a :class:`~repro.serve.sources.SourceWatcher` feeding jobs in from
  attached sources, capacity-aware;
* an in-memory lifecycle store of frozen :class:`JobRecord` snapshots,
  mirrored transition-by-transition into a
  :class:`~repro.serve.records.JobLogIndex` JSONL file in the spool
  directory.

The guarantee the whole tier hangs on: a job's recorded ``digest`` is
byte-identical to the digest the serial batch path
(``PreprocessJob.run(parallel=False)`` / ``repro preprocess --serial``)
produces for the same spec — the service only re-plumbs *when* work runs,
never *what* it computes.  Shutdown is equally explicit: ``stop(drain=True)``
finishes everything queued; ``stop(drain=False)`` marks the queued tail
cancelled.  Either way every record ends terminal — no orphans.
"""

from __future__ import annotations

import itertools
import os
import re
import threading
import time
import traceback
from typing import Callable, Dict, Iterator, List, Optional

from repro.api.preprocess import PreprocessJob, minibatch_digest
from repro.errors import JobNotFoundError, ReproError, ServeError
from repro.faults.injector import fault_stage
from repro.features.synthetic import SyntheticTableGenerator
from repro.serve.pool import WorkerPool
from repro.serve.queue import BoundedJobQueue
from repro.serve.records import JobLogIndex, JobRecord, StageEvent
from repro.serve.sources import JobSource, SourceWatcher

#: stage order the default runner reports (skipped stages stay explicit)
PIPELINE_STAGES = ("generate", "partition", "extract", "transform")

#: a runner produces the job's output digest; ``record_stage`` mirrors
#: executor stage callbacks into the job's record
ServiceRunner = Callable[[PreprocessJob, "StageRecorder"], str]

StageRecorder = Callable[[str, str, Dict[str, float]], None]


class PreprocessService:
    """Long-running preprocessing tier: submit, watch, drain, audit."""

    def __init__(
        self,
        spool_dir: Optional[str] = None,
        queue_capacity: int = 16,
        num_workers: int = 2,
        policy: str = "block",
        submit_timeout: Optional[float] = None,
        max_retries: int = 1,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        poll_interval: float = 0.2,
        runner: Optional[ServiceRunner] = None,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        job_timeout_s: Optional[float] = None,
        index_fsync: bool = False,
        recover: bool = True,
    ) -> None:
        self.spool_dir = spool_dir
        self.submit_timeout = submit_timeout
        self.job_timeout_s = job_timeout_s
        self._clock = clock
        self._runner = runner or _default_runner
        self.queue: BoundedJobQueue = BoundedJobQueue(
            capacity=queue_capacity, policy=policy
        )
        self.pool = WorkerPool(
            self.queue,
            self._execute_attempt,
            num_workers=num_workers,
            max_retries=max_retries,
            backoff_s=backoff_s,
            backoff_factor=backoff_factor,
            sleep=sleep,
            on_done=self._on_done,
            on_retry=self._on_retry,
            on_worker_death=self._on_worker_death,
            job_timeout_s=job_timeout_s,
            on_timeout=self._on_timeout,
        )
        self.watcher = SourceWatcher(
            submit=self.submit_job,
            free_slots=lambda: self.queue.free,
            poll_interval=poll_interval,
        )
        self.index: Optional[JobLogIndex] = None
        if spool_dir is not None:
            os.makedirs(spool_dir, exist_ok=True)
            self.index = JobLogIndex(
                os.path.join(spool_dir, "jobs.jsonl"), fsync=index_fsync
            )
        self._recover_on_start = recover
        self._records: Dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._started = False
        self._stopped = False
        #: worker-death audit trail: (worker name, job_id, error)
        self.worker_deaths: List[tuple] = []
        #: watchdog audit trail: (worker name, job_id, elapsed seconds)
        self.job_timeouts: List[tuple] = []
        #: index-append failures the service survived: (job_id, state, error)
        self.index_errors: List[tuple] = []
        #: job ids recovery re-enqueued on the last start()
        self.recovered_jobs: List[str] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "PreprocessService":
        """Recover the spool, then start the pool and watcher (idempotent).

        Recovery runs *before* any worker exists: the index is replayed,
        jobs a dead daemon left queued/running are marked ``interrupted``
        and re-enqueued (capacity-bypassing, so a backlog larger than the
        queue can never deadlock startup), and the job-id counter is seeded
        past every recovered id so new submissions never collide.
        """
        if self._stopped:
            raise ServeError("service cannot restart after stop()")
        if not self._started:
            self._started = True
            if self._recover_on_start:
                self._recover()
            self.pool.start()
            self.watcher.start()
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down explicitly: drain queued work, or cancel it by name.

        ``drain=True`` refuses new submissions and finishes every queued
        and in-flight job; ``drain=False`` finishes only in-flight jobs and
        marks the queued tail ``cancelled`` (reason ``"service shutdown"``).
        Afterwards every record is terminal.
        """
        self._stopped = True
        self.watcher.stop(timeout=timeout)
        if drain:
            self.pool.drain(timeout=timeout)
        else:
            for job_id in self.pool.stop(timeout=timeout):
                self._transition(
                    job_id,
                    lambda record: record.mark_cancelled(
                        self._clock(), reason="service shutdown"
                    ),
                )

    def _recover(self) -> None:
        """Replay the job index and re-own everything a dead daemon left.

        Terminal records come back as read-only history (status/jobs keep
        answering for them); non-terminal records — a previous daemon died
        with them queued or running — are marked ``interrupted``, persisted
        as such, and re-enqueued in job-id order.  Re-running a job that
        actually finished but whose completion line never hit the disk is
        safe: the data plane is deterministic, so the re-run produces the
        byte-identical digest the lost line would have recorded.
        """
        if self.index is None:
            return
        records = self.index.load()  # loud on interior corruption
        max_id = 0
        requeue: List[JobRecord] = []
        now = self._clock()
        with self._changed:
            for record in records:
                match = re.fullmatch(r"job-(\d+)", record.job_id)
                if match:
                    max_id = max(max_id, int(match.group(1)))
                if record.is_terminal:
                    self._records[record.job_id] = record
                    continue
                interrupted = record.mark_interrupted(now)
                self._records[record.job_id] = interrupted
                self._persist(interrupted)
                requeue.append(interrupted)
            self._ids = itertools.count(max_id + 1)
            self._changed.notify_all()
        # numeric order, not lexicographic: "job-10" must follow "job-2"
        def _submission_order(record: JobRecord):
            match = re.fullmatch(r"job-(\d+)", record.job_id)
            if match:
                return (0, int(match.group(1)), record.job_id)
            return (1, 0, record.job_id)

        requeue.sort(key=_submission_order)
        self.recovered_jobs = [record.job_id for record in requeue]
        self.queue.restore(self.recovered_jobs)

    def __enter__(self) -> "PreprocessService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None, timeout=60.0)

    # -- submission ----------------------------------------------------------

    def submit(self, job: PreprocessJob, source: str = "client",
               timeout: Optional[float] = None) -> JobRecord:
        """Queue one job; returns its freshly minted ``queued`` record.

        Honors the queue's backpressure policy: raises
        :class:`~repro.errors.QueueFullError` when the queue rejects (or a
        block times out) and :class:`~repro.errors.QueueClosedError` once
        the service is stopping — the job is then *not* recorded.
        """
        if not isinstance(job, PreprocessJob):
            job = PreprocessJob.from_dict(job)
        with self._lock:
            job_id = f"job-{next(self._ids):06d}"
        record = JobRecord(
            job_id=job_id,
            job=job,
            source=source,
            state="queued",
            submitted_at=self._clock(),
        )
        # record + persist BEFORE the queue sees the id: a worker can only
        # observe jobs whose "queued" line is already in the index, so index
        # line order always matches transition order
        with self._changed:
            self._records[job_id] = record
            self._persist(record)
            self._changed.notify_all()
        try:
            self.queue.put(
                job_id,
                timeout=timeout if timeout is not None else self.submit_timeout,
            )
        except ServeError as exc:
            # submission failed: drop the live record and leave a terminal
            # tombstone in the index (nothing in the log may end non-terminal)
            with self._changed:
                self._records.pop(job_id, None)
                self._persist(
                    record.mark_cancelled(
                        self._clock(), reason=f"rejected: {exc}"
                    )
                )
            raise
        return record

    def submit_job(self, job: PreprocessJob, source: str) -> JobRecord:
        """Watcher-facing alias (positional source)."""
        return self.submit(job, source=source)

    # -- queries -------------------------------------------------------------

    def status(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise JobNotFoundError(f"no such job: {job_id!r}")
        return record

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """Every known record, submission order; ``state`` filters."""
        with self._lock:
            records = sorted(
                self._records.values(), key=lambda r: r.job_id
            )
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def counts(self) -> Dict[str, int]:
        """state -> number of jobs (the one-line service status)."""
        tally: Dict[str, int] = {}
        for record in self.jobs():
            tally[record.state] = tally.get(record.state, 0) + 1
        return tally

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._changed:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    raise JobNotFoundError(f"no such job: {job_id!r}")
                if record.is_terminal:
                    return record
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"{job_id} still {record.state} after {timeout}s"
                    )
                self._changed.wait(remaining)

    def watch(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[JobRecord]:
        """Yield a record snapshot on every transition until terminal.

        The streaming notification feed: each yielded record reflects a new
        state or newly recorded stage event; the final one is terminal.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        last = None
        while True:
            with self._changed:
                while True:
                    record = self._records.get(job_id)
                    if record is None:
                        raise JobNotFoundError(f"no such job: {job_id!r}")
                    fingerprint = (record.state, len(record.stages),
                                   record.attempts)
                    if fingerprint != last:
                        last = fingerprint
                        break
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"{job_id} still {record.state} after {timeout}s"
                        )
                    self._changed.wait(remaining)
            yield record
            if record.is_terminal:
                return

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued (or recovered-but-not-restarted) job.

        Running and terminal jobs are not cancellable.
        """
        record = self.status(job_id)  # raises JobNotFoundError when unknown
        if record.state not in ("queued", "interrupted"):
            return False
        removed = self.queue.cancel(lambda item: item == job_id)
        if not removed:  # a worker grabbed it between status and cancel
            return False
        self._transition(
            job_id,
            lambda rec: rec.mark_cancelled(self._clock(), reason="cancelled"),
        )
        return True

    # -- sources -------------------------------------------------------------

    def attach_source(self, source: JobSource) -> JobSource:
        self.watcher.attach(source)
        return source

    def detach_source(self, source: JobSource) -> None:
        self.watcher.detach(source)

    # -- pool plumbing -------------------------------------------------------

    def _execute_attempt(self, job_id: str, attempt: int) -> str:
        """One attempt at one job (runs on a pool worker thread)."""
        record = self._transition(
            job_id, lambda rec: rec.mark_running(self._clock())
        )
        started: List[str] = []
        completed: set = set()

        def record_stage(stage: str, status: str, metrics: Dict) -> None:
            metrics = dict(metrics or {})
            elapsed = metrics.pop("elapsed_s", None)
            if status == "started":
                started.append(stage)
            elif status == "completed":
                completed.add(stage)
            self._transition(
                job_id,
                lambda rec: rec.with_stage(
                    StageEvent(
                        stage=stage,
                        status=status,
                        at=self._clock(),
                        elapsed_s=elapsed,
                        metrics=metrics,
                    )
                ),
            )

        try:
            return self._runner(record.job, record_stage)
        except BaseException as error:
            # telemetry contract: the stage that blew up is recorded as
            # failed with error details, stages that never ran as skipped
            now = self._clock()
            detail = f"{type(error).__name__}: {error}"
            failing = [s for s in started if s not in completed]
            events = [
                StageEvent(stage=stage, status="failed", at=now, error=detail)
                for stage in (failing or ["attempt"])
            ]
            events += [
                StageEvent(stage=stage, status="skipped", at=now)
                for stage in PIPELINE_STAGES
                if stage not in completed and stage not in failing
            ]
            self._transition(job_id, lambda rec: _with_stages(rec, events))
            raise

    def _on_done(
        self, job_id: str, digest, error: Optional[BaseException]
    ) -> None:
        if error is None:
            self._transition(
                job_id,
                lambda rec: rec.mark_completed(self._clock(), digest),
            )
        else:
            detail = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            self._transition(
                job_id,
                lambda rec: rec.mark_failed(self._clock(), detail),
            )

    def _on_retry(
        self, job_id: str, attempt: int, error: Exception, delay: float
    ) -> None:
        self._transition(
            job_id,
            lambda rec: rec.with_stage(
                StageEvent(
                    stage="retry",
                    status="completed",
                    at=self._clock(),
                    metrics={"attempt": attempt, "backoff_s": delay},
                )
            ),
        )

    def _on_worker_death(
        self, worker: str, job_id, error: BaseException
    ) -> None:
        self.worker_deaths.append((worker, job_id, repr(error)))

    def _on_timeout(self, worker: str, job_id, elapsed: float) -> None:
        """Watchdog verdict: record the blown deadline as a stage event.

        The pool reports the terminal :class:`JobTimeoutError` through
        ``_on_done`` right after this, so the record reads: deadline stage
        failed, then job failed.
        """
        self.job_timeouts.append((worker, job_id, elapsed))
        self._transition(
            job_id,
            lambda rec: rec.with_stage(
                StageEvent(
                    stage="deadline",
                    status="failed",
                    at=self._clock(),
                    elapsed_s=elapsed,
                    error=(
                        f"exceeded the {self.job_timeout_s}s job deadline; "
                        f"worker {worker} abandoned and replaced"
                    ),
                )
            ),
        )

    # -- record bookkeeping --------------------------------------------------

    def _transition(
        self, job_id: str, update: Callable[[JobRecord], JobRecord]
    ) -> JobRecord:
        with self._changed:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFoundError(f"no such job: {job_id!r}")
            if record.is_terminal:
                return record  # late event after cancel/fail: keep terminal
            record = update(record)
            self._records[job_id] = record
            self._persist(record)
            self._changed.notify_all()
        return record

    def _persist(self, record: JobRecord) -> None:
        """Mirror one transition into the index; survive spool faults.

        The in-memory record stays authoritative: a torn or failed append
        (disk full, injected fault) is audited in ``index_errors`` and the
        service keeps running.  Worst case after a crash the lost line
        means an already-finished job is replayed — idempotent, because the
        data plane is deterministic.  Terminal appends also give the index
        a chance to compact itself (bounded growth for long-lived daemons).
        """
        if self.index is None:
            return
        try:
            self.index.append(record)
        except (ReproError, OSError) as exc:
            self.index_errors.append((record.job_id, record.state, repr(exc)))
            return
        if record.is_terminal:
            try:
                self.index.maybe_compact()
            except (ReproError, OSError) as exc:
                self.index_errors.append((record.job_id, "compact", repr(exc)))


def _with_stages(record: JobRecord, events) -> JobRecord:
    for event in events:
        record = record.with_stage(event)
    return record


def _default_runner(job: PreprocessJob, record_stage: StageRecorder) -> str:
    """The real data plane: generate, then the staged ShardExecutor path.

    Serial per job (concurrency comes from the pool's workers), and
    digest-identical to ``PreprocessJob.run(parallel=False)`` — both drive
    the same partition -> write -> read -> transform code.
    """
    fault_stage("generate", seed=job.seed)
    record_stage("generate", "started", {})
    start = time.perf_counter()
    generator = SyntheticTableGenerator(job.spec(), seed=job.seed)
    data = generator.generate(job.num_rows)
    record_stage(
        "generate",
        "completed",
        {"elapsed_s": time.perf_counter() - start, "rows": job.num_rows},
    )
    executor = job.build_executor()
    results = executor.run_staged(data, on_stage=record_stage)
    return minibatch_digest([r.batch for r in results])

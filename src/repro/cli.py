"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``report``          — run every registered experiment + ablation, print the
                        full paper-vs-measured report and claims scoreboard;
                        ``--parallel`` fans out across a process pool with
                        byte-identical output, ``--only figures|tables|
                        ablations`` narrows the set, ``--json`` emits the
                        structured payload, and results are cached on disk
                        (``--force`` re-runs, ``--no-cache`` disables);
* ``list``            — list registered experiment ids (``--only`` filters);
* ``run <id> [...]``  — run one or more experiments by id (e.g. ``fig12``,
                        ``table2``, ``abl-lanes``) and print their tables;
                        ``--set param=value`` overrides experiment params
                        (e.g. ``--set model=RM1``) or calibration fields,
                        ``--json`` emits the structured results;
* ``run --model RM5 --system PreSto [--gpus N]`` — run one declarative
                        scenario through the :mod:`repro.api` front door;
* ``sweep``           — run a scenario grid (models x systems x gpus) in
                        parallel and tabulate the results;
* ``systems``         — list registered system design points;
* ``provision <model> [--gpus N]`` — print the T/P provisioning of every
                        system design point for one Table I model;
* ``export``          — write every experiment's rows (with a header row) as
                        CSV or, with ``--format json``, as JSON files;
* ``preprocess``      — actually run the sharded preprocessing data plane
                        (write -> read -> transform across a process pool)
                        for one model and print the throughput/digest
                        summary; ``--check`` proves the parallel run is
                        byte-identical to the serial pipeline;
* ``bench``           — run the kernel/end-to-end microbenchmarks, print the
                        timing table and write ``BENCH_kernels.json`` (the
                        repo's recorded perf trajectory; ``--quick`` for a
                        CI-sized smoke run);
* ``serve``           — run the streaming preprocessing daemon: a bounded
                        work queue feeding a persistent worker pool, watched
                        job sources (``--watch DIR``, ``--synthetic SPEC``),
                        a JSONL job index in the spool directory, and a
                        line-oriented JSON socket protocol for clients;
* ``submit``/``status``/``jobs``/``cancel``/``shutdown`` — the client
                        surface of a running daemon: submit a preprocessing
                        job (``--wait`` streams it to completion), poll one
                        job or list all of them, cancel a queued job, or
                        stop the daemon (draining by default).  Clients find
                        the daemon through ``--spool`` (its
                        ``endpoint.json``) or an explicit ``--host/--port``.

Experiments are resolved through :data:`repro.api.EXPERIMENT_REGISTRY`, so a
user-registered experiment (see ``examples/custom_experiment.py``) shows up
in ``list``/``run``/``report``/``export`` without touching this module —
point ``$REPRO_EXPERIMENTS`` at a comma-separated list of importable modules
and the registry loads them before resolving ids.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.api import (
    EXPERIMENT_REGISTRY,
    REGISTRY,
    ExperimentRun,
    PreprocessJob,
    RunResult,
    RunStore,
    Scenario,
    Sweep,
    available_systems,
)
from repro.api.scenario import _CALIBRATION_FIELDS
from repro.errors import ReproError
from repro.experiments import report as report_mod
from repro.experiments.common import format_table
from repro.features.specs import MODEL_NAMES, get_model

#: ``--only`` choices -> registry kinds
_ONLY_KINDS = {"figures": "figure", "tables": "table", "ablations": "ablation"}

#: columns of the scenario/sweep result table
RESULT_HEADERS = (
    "model",
    "system",
    "GPUs",
    "workers",
    "util (%)",
    "steady util (%)",
    "supply (samples/s)",
    "power (W)",
    "CapEx ($)",
)


def _result_row(result: RunResult) -> tuple:
    scenario = result.scenario
    return (
        scenario.model,
        scenario.system,
        scenario.num_gpus,
        result.num_workers,
        100.0 * result.gpu_utilization,
        100.0 * result.steady_state_utilization,
        result.preprocessing_throughput,
        result.power_watts,
        result.capex_dollars,
    )


def _print_results(results: List[RunResult], title: str, as_json: bool) -> None:
    if as_json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
        return
    print(format_table(RESULT_HEADERS, [_result_row(r) for r in results], title))


def _parse_overrides(pairs: Optional[List[str]]) -> Dict[str, float]:
    """Scenario-path ``--set``: calibration overrides only, all numeric."""
    overrides: Dict[str, float] = {}
    for pair in pairs or []:
        name, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--set expects field=value, got {pair!r}")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise SystemExit(f"--set {name}: {value!r} is not a number")
    return overrides


def _parse_set_pairs(pairs: Optional[List[str]]) -> Dict[str, Any]:
    """Experiment-path ``--set``: values parse as JSON when possible (ints,
    floats, lists), else stay strings (``--set model=RM1``)."""
    parsed: Dict[str, Any] = {}
    for pair in pairs or []:
        name, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--set expects param=value, got {pair!r}")
        try:
            parsed[name] = json.loads(value)
        except ValueError:
            parsed[name] = value
    return parsed


def _experiment_spec_for(command_id: str):
    try:
        # the registry's own errors are already actionable: unknown ids
        # list the registered experiments, $REPRO_EXPERIMENTS import
        # failures name the broken module
        return EXPERIMENT_REGISTRY.get(command_id)
    except ReproError as exc:
        raise SystemExit(str(exc))


def _experiment_runs_for(
    command_ids: List[str], overrides: Optional[Dict[str, Any]] = None
) -> List[ExperimentRun]:
    """Resolve ``command_ids`` and split ``--set`` overrides per experiment.

    Each override applies to every listed experiment that accepts it — as a
    parameter, or as a calibration field when the experiment takes
    calibration.  A name no listed experiment can consume is an error.
    """
    specs = [_experiment_spec_for(command_id) for command_id in command_ids]
    overrides = overrides or {}
    for name in overrides:
        takes_param = any(name in spec.param_names() for spec in specs)
        takes_cal = name in _CALIBRATION_FIELDS and any(
            spec.takes_calibration for spec in specs
        )
        if not takes_param and not takes_cal:
            known = sorted({p for spec in specs for p in spec.param_names()})
            raise SystemExit(
                f"--set {name}: no listed experiment has such a parameter "
                f"(parameters: {', '.join(known) or 'none'}) and it is not "
                "an applicable calibration field"
            )
    runs = []
    for spec in specs:
        params = {
            name: value
            for name, value in overrides.items()
            if name in spec.param_names()
        }
        calibration = {
            name: value
            for name, value in overrides.items()
            if name in _CALIBRATION_FIELDS
            and name not in params
            and spec.takes_calibration
        }
        try:
            runs.append(
                ExperimentRun(spec.id, params=params, calibration=calibration)
            )
        except ReproError as exc:
            raise SystemExit(str(exc))
    return runs


def _parse_only(only: Optional[str]) -> Optional[List[str]]:
    """``--only figures,tables`` -> registry kinds (or None for all)."""
    if not only:
        return None
    kinds = []
    for token in _csv(only):
        kind = _ONLY_KINDS.get(token.lower())
        if kind is None:
            raise SystemExit(
                f"--only expects a comma list of {'|'.join(_ONLY_KINDS)}, "
                f"got {token!r}"
            )
        kinds.append(kind)
    return kinds


def _store_from_args(args: argparse.Namespace) -> Optional[RunStore]:
    """The result cache the command should use (None when disabled)."""
    if getattr(args, "no_cache", False):
        return None
    return RunStore(getattr(args, "cache_dir", None) or None)


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _batch_journal(args: argparse.Namespace):
    """``(journal, resume)`` from ``--run-id``/``--resume``.

    ``--resume RUN_ID`` implies the journal of that run; ``--run-id``
    starts a fresh journaled run.  With neither, no journal is written.
    The journal lives under ``<cache-dir>/batch`` when ``--cache-dir``
    is given, else under the default store root.
    """
    from repro.batch import BatchJournal

    resume_id = getattr(args, "resume", None)
    run_id = resume_id or getattr(args, "run_id", None)
    if run_id is None:
        return None, False
    cache_dir = getattr(args, "cache_dir", None)
    root = os.path.join(cache_dir, "batch") if cache_dir else None
    try:
        journal = BatchJournal.for_run(run_id, root=root)
    except ReproError as exc:
        raise SystemExit(str(exc))
    return journal, resume_id is not None


def _print_outcomes(outcomes, title: str, as_json: bool) -> None:
    """Degrade-mode sweep output: ok rows tabulated, failures named."""
    if as_json:
        payload = []
        for outcome in outcomes:
            record = outcome.to_dict()
            if outcome.ok:
                record["result"] = outcome.result.to_dict()
            payload.append(record)
        print(json.dumps(payload, indent=2))
        return
    ok = [outcome.result for outcome in outcomes if outcome.ok]
    if ok:
        print(format_table(
            RESULT_HEADERS, [_result_row(r) for r in ok], title
        ))
    for outcome in outcomes:
        if not outcome.ok:
            print(
                f"FAILED {outcome.label}: {outcome.state} after "
                f"{outcome.attempts} attempt(s): {outcome.error}"
            )


def cmd_report(args: argparse.Namespace) -> int:
    """Full report (cached, optionally parallel, optionally JSON)."""
    journal, resume = _batch_journal(args)
    try:
        results = report_mod.run_all(
            kinds=_parse_only(args.only),
            parallel=args.parallel,
            processes=args.processes,
            store=_store_from_args(args),
            force=args.force,
            failure_mode=args.failure_mode,
            journal=journal,
            resume=resume,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(report_mod.report_payload(results), indent=2))
    else:
        print(report_mod.render_report(results))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """Registered experiments, in paper order."""
    kinds = _parse_only(args.only)
    try:
        specs = [
            spec
            for spec in EXPERIMENT_REGISTRY.experiments()
            if kinds is None or spec.kind in kinds
        ]
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "id": spec.id,
                        "title": spec.title,
                        "kind": spec.kind,
                        "params": spec.default_params(),
                        "doc": spec.doc,
                    }
                    for spec in specs
                ],
                indent=2,
            )
        )
        return 0
    for spec in specs:
        params = ", ".join(spec.param_names())
        suffix = f"  [{params}]" if params else ""
        print(f"{spec.id:15} {spec.kind:9} -> {spec.title}{suffix}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run experiments by id, or one declarative scenario via --model/--system."""
    wants_scenario = args.model or args.system
    if wants_scenario:
        if args.ids:
            raise SystemExit("pass experiment ids OR --model/--system, not both")
        if not (args.model and args.system):
            raise SystemExit("scenario runs need both --model and --system")
        try:
            scenario = Scenario(
                model=args.model,
                system=args.system,
                num_gpus=args.gpus,
                num_workers=args.workers,
                num_batches=args.batches,
                queue_capacity=args.queue,
                calibration=_parse_overrides(args.set),
            )
            result = scenario.run()
        except ReproError as exc:
            raise SystemExit(str(exc))
        _print_results([result], f"Scenario {scenario.label}", args.json)
        if not args.json:
            print(result.summary())
        return 0
    if not args.ids:
        raise SystemExit("pass experiment ids (see `list`) or --model/--system")
    payloads = []
    for run in _experiment_runs_for(args.ids, _parse_set_pairs(args.set)):
        try:
            result = run.run()
        except ReproError as exc:
            raise SystemExit(str(exc))
        if args.json:
            payloads.append(report_mod.experiment_record(result, run=run))
        else:
            print(result.render())
            print()
    if args.json:
        print(json.dumps(payloads, indent=2))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a scenario grid (models x systems x gpus) and tabulate it."""
    from repro.batch import BatchPolicy

    journal, resume = _batch_journal(args)
    try:
        sweep = Sweep.grid(
            models=_csv(args.models),
            systems=_csv(args.systems),
            num_gpus=[int(g) for g in _csv(args.gpus)],
            num_batches=args.batches,
            queue_capacity=args.queue,
            calibration=_parse_overrides(args.set),
        )
        policy = BatchPolicy(
            max_retries=args.max_retries,
            task_timeout_s=args.task_timeout,
        )
        results = sweep.run(
            parallel=not args.serial,
            processes=args.processes,
            policy=policy,
            failure_mode=args.failure_mode,
            journal=journal,
            resume=resume,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.failure_mode == "degrade":
        _print_outcomes(
            results, f"Sweep: {len(results)} scenarios", args.json
        )
        return 0 if all(outcome.ok for outcome in results) else 1
    _print_results(
        results, f"Sweep: {len(results)} scenarios", args.json
    )
    return 0


def cmd_systems(_: argparse.Namespace) -> int:
    """Registered system design points."""
    for name in available_systems():
        doc = (REGISTRY.get(name).__doc__ or "").strip()
        first_line = doc.splitlines()[0] if doc else "(no description)"
        print(f"{name:14} {first_line}")
    return 0


def cmd_provision(args: argparse.Namespace) -> int:
    """Provisioning summary across system designs."""
    spec = get_model(args.model)
    print(
        f"{spec.name}: provisioning for {args.gpus} GPU(s), "
        f"batch {spec.batch_size}"
    )
    for name in available_systems():
        system = REGISTRY.create(name, spec)
        try:
            plan = system.provision_for(args.gpus)
        except Exception as exc:  # co-located caps, etc.
            print(f"  {name:14} not provisionable: {exc}")
            continue
        print(
            f"  {name:14} {plan.num_workers:5d} workers  "
            f"(P = {plan.worker_throughput:12,.0f} samples/s, "
            f"headroom {plan.headroom:.2f}x)"
        )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Write every experiment's rows (with header) as CSV or JSON files."""
    import csv
    import os

    os.makedirs(args.dir, exist_ok=True)
    store = _store_from_args(args)
    written = []
    for run in _experiment_runs_for(args.ids or list(EXPERIMENT_REGISTRY.ids())):
        result = store.load(run) if store is not None and not args.force else None
        hit = result is not None
        if result is None:
            try:
                result = run.run()
            except ReproError as exc:
                raise SystemExit(str(exc))
        try:
            columns = list(result.columns())
            rows = [list(row) for row in result.rows()]
        except NotImplementedError:
            print(
                f"warning: skipping {run.experiment!r} — its result does not "
                "implement columns()/rows()",
                file=sys.stderr,
            )
            continue
        if store is not None and not hit:
            try:
                store.save(run, result)
            except (ReproError, OSError) as exc:
                print(
                    f"warning: could not cache {run.experiment!r}: {exc}",
                    file=sys.stderr,
                )
        if args.format == "json":
            path = os.path.join(args.dir, f"{run.experiment}.json")
            with open(path, "w") as handle:
                json.dump(
                    {
                        "id": run.experiment,
                        "title": run.spec.title,
                        "columns": columns,
                        "rows": rows,
                    },
                    handle,
                    indent=2,
                )
                handle.write("\n")
        else:
            path = os.path.join(args.dir, f"{run.experiment}.csv")
            with open(path, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(columns)
                writer.writerows(rows)
        written.append(path)
    for path in written:
        print(path)
    return 0


def cmd_preprocess(args: argparse.Namespace) -> int:
    """Run the sharded preprocessing data plane and summarize it."""
    try:
        job = PreprocessJob(
            model=args.model,
            num_rows=args.rows,
            num_shards=args.shards,
            processes=args.processes,
            seed=args.seed,
        )
        start = time.perf_counter()
        result = job.run(parallel=not args.serial)
        elapsed = time.perf_counter() - start
    except ReproError as exc:
        raise SystemExit(str(exc))

    check_digest = None
    if args.check and not args.serial:
        check_digest = job.run(parallel=False).digest
        if check_digest != result.digest:
            raise SystemExit(
                f"digest mismatch: parallel {result.digest} != "
                f"serial {check_digest} — sharded run is not serial-identical"
            )

    stats = result.stats
    payload = {
        "job": job.to_dict(),
        "num_shards": stats.num_shards,
        "num_rows": stats.num_rows,
        "file_bytes": stats.file_bytes,
        "bytes_read": stats.bytes_read,
        "transform_elements": stats.transform_elements,
        "elapsed_s": elapsed,
        "rows_per_s": stats.num_rows / elapsed if elapsed else 0.0,
        "digest": result.digest,
        "serial_identical": (
            check_digest == result.digest if check_digest else None
        ),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"Preprocess {job.label}" + (" (serial)" if args.serial else ""))
    print(f"  shards              {stats.num_shards}")
    print(f"  rows                {stats.num_rows}")
    print(f"  transform elements  {stats.transform_elements}")
    print(f"  extract bytes       {stats.bytes_read} of {stats.file_bytes}")
    print(f"  wall time           {elapsed:.3f} s "
          f"({payload['rows_per_s']:,.0f} rows/s)")
    print(f"  digest              {result.digest}")
    if check_digest is not None:
        print("  serial check        byte-identical")
    return 0


#: default spool directory shared by the daemon and its clients
DEFAULT_SPOOL = ".repro-serve"


def _parse_synthetic(spec: str):
    """``MODEL[:ROWS[:SHARDS[:COUNT]]]`` -> a synthetic job source."""
    from repro.serve import SOURCE_REGISTRY

    parts = spec.split(":")
    if len(parts) > 4 or not parts[0]:
        raise SystemExit(
            f"--synthetic expects MODEL[:ROWS[:SHARDS[:COUNT]]], got {spec!r}"
        )
    try:
        kwargs = {"model": parts[0]}
        if len(parts) > 1:
            kwargs["num_rows"] = int(parts[1])
        if len(parts) > 2:
            kwargs["num_shards"] = int(parts[2])
        if len(parts) > 3:
            kwargs["count"] = int(parts[3])
        return SOURCE_REGISTRY.create("synthetic", **kwargs)
    except (ValueError, ReproError) as exc:
        raise SystemExit(f"--synthetic {spec!r}: {exc}")


def _client_from_args(args: argparse.Namespace):
    """A protocol client found via --host/--port or the spool endpoint."""
    from repro.serve import ServiceClient

    try:
        return ServiceClient(
            host=args.host, port=args.port, spool_dir=args.spool
        )
    except ReproError as exc:
        raise SystemExit(str(exc))


def _record_lines(record, verbose: bool = False) -> List[str]:
    """Human-readable lines for one job record."""
    lines = [
        f"{record.job_id}  {record.state:9}  {record.job.label:28}  "
        f"source={record.source}  attempts={record.attempts}"
    ]
    if record.digest:
        lines.append(f"    digest  {record.digest}")
    if record.error:
        lines.append(f"    error   {record.error}")
    if verbose:
        for event in record.stages:
            elapsed = (
                f" {event.elapsed_s * 1e3:8.1f} ms"
                if event.elapsed_s is not None
                else ""
            )
            metrics = (
                "  " + ", ".join(f"{k}={v}" for k, v in event.metrics.items())
                if event.metrics
                else ""
            )
            error = f"  error={event.error}" if event.error else ""
            lines.append(
                f"    stage   {event.stage:10} {event.status:9}"
                f"{elapsed}{metrics}{error}"
            )
    return lines


def _print_record(record, as_json: bool, verbose: bool = False) -> None:
    if as_json:
        print(json.dumps(record.to_dict(), indent=2))
    else:
        print("\n".join(_record_lines(record, verbose=verbose)))


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming preprocessing daemon until shutdown."""
    from repro.serve import PreprocessService, ServiceServer, SOURCE_REGISTRY

    try:
        if args.faults:
            from repro.faults import FaultInjector, FaultPlan, install

            install(FaultInjector(FaultPlan.load(args.faults)))
        service = PreprocessService(
            spool_dir=args.spool,
            queue_capacity=args.queue,
            num_workers=args.workers,
            policy=args.policy,
            max_retries=args.max_retries,
            backoff_s=args.backoff,
            poll_interval=args.poll,
            job_timeout_s=args.job_timeout,
            index_fsync=not args.no_fsync,
        )
        for path in args.watch or []:
            service.attach_source(SOURCE_REGISTRY.create("directory", path=path))
        for spec in args.synthetic or []:
            service.attach_source(_parse_synthetic(spec))
        server = ServiceServer(service, host=args.host, port=args.port)
        server.start()
    except ReproError as exc:
        raise SystemExit(str(exc))
    print(
        f"repro serve: listening on {server.host}:{server.port} "
        f"(spool {args.spool}, {args.workers} workers, "
        f"queue {args.queue}/{args.policy})",
        flush=True,
    )
    if service.recovered_jobs:
        print(
            f"repro serve: recovered {len(service.recovered_jobs)} "
            f"interrupted job(s): {', '.join(service.recovered_jobs)}",
            flush=True,
        )
    try:
        while not server.wait(timeout=0.5):
            pass
        print("repro serve: shut down", flush=True)
    except KeyboardInterrupt:
        print("repro serve: interrupted — draining", flush=True)
        server.stop(drain=True)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one preprocessing job to a running daemon."""
    try:
        job = PreprocessJob(
            model=args.model,
            num_rows=args.rows,
            num_shards=args.shards,
            processes=args.processes,
            seed=args.seed,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    client = _client_from_args(args)
    try:
        record = client.submit(
            job, wait=args.wait, wait_timeout=args.timeout
        )
    except (ReproError, TimeoutError) as exc:
        raise SystemExit(str(exc))
    _print_record(record, args.json, verbose=args.wait)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Show one job's full lifecycle record."""
    client = _client_from_args(args)
    try:
        if args.follow:
            record = None
            for record in client.watch(args.job_id, timeout=args.timeout):
                if not args.json:
                    print(_record_lines(record)[0])
            _print_record(record, args.json, verbose=True)
        else:
            _print_record(
                client.status(args.job_id), args.json, verbose=True
            )
    except (ReproError, TimeoutError) as exc:
        raise SystemExit(str(exc))
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """List every job the daemon knows about."""
    client = _client_from_args(args)
    try:
        records = client.jobs(state=args.state)
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2))
        return 0
    if not records:
        print("no jobs")
        return 0
    for record in records:
        print(_record_lines(record)[0])
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    """Cancel a queued job (running jobs are not cancellable)."""
    client = _client_from_args(args)
    try:
        cancelled = client.cancel(args.job_id)
    except ReproError as exc:
        raise SystemExit(str(exc))
    print(f"{args.job_id}: {'cancelled' if cancelled else 'not cancellable'}")
    return 0 if cancelled else 1


def cmd_shutdown(args: argparse.Namespace) -> int:
    """Ask a running daemon to stop (draining queued work by default)."""
    client = _client_from_args(args)
    try:
        client.shutdown(drain=not args.no_drain)
    except ReproError as exc:
        raise SystemExit(str(exc))
    print("shutdown requested" + (" (no drain)" if args.no_drain else ""))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the seeded fault matrix against a live service; gate on invariants."""
    from repro.faults import ChaosError
    from repro.faults.chaos import (
        check_report,
        deterministic_view,
        render_report,
        run_chaos,
    )

    faults = (
        tuple(f.strip() for f in args.faults.split(",") if f.strip())
        if args.faults
        else None
    )
    try:
        report = run_chaos(
            faults,
            seed=args.seed,
            spool_root=args.spool_root,
            tier=args.tier,
            num_jobs=args.jobs,
            rows=args.rows,
            shards=args.shards,
            workers=args.workers,
            job_timeout_s=args.timeout,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(deterministic_view(report), indent=2, sort_keys=True))
    else:
        print(render_report(report))
    try:
        check_report(report)
    except ChaosError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


#: default per-node/per-arrival fire rates for ``repro fleet run --faults``
_FLEET_FAULT_RATES = {
    "node-down": 0.01,
    "slow-node": 0.05,
    "arrival-burst": 0.03,
}


def _fleet_injector(faults: str, seed: int):
    """A fresh :class:`FaultInjector` for a comma-separated fault list."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan, FaultRule

    rules = []
    for fault in (f.strip() for f in faults.split(",")):
        if not fault:
            continue
        if fault not in _FLEET_FAULT_RATES:
            raise SystemExit(
                f"unknown fleet fault {fault!r}; known: "
                f"{', '.join(sorted(_FLEET_FAULT_RATES))}"
            )
        rules.append(FaultRule(
            point=fault,
            rate=_FLEET_FAULT_RATES[fault],
            delay_s=300.0 if fault == "slow-node" else None,
        ))
    if not rules:
        return None
    return FaultInjector(FaultPlan(seed=seed, rules=tuple(rules)))


def _fleet_trace(args: argparse.Namespace):
    """The arrival trace a fleet subcommand runs: loaded from ``--trace``
    when given, else generated from the seeded ``--kind`` parameters."""
    from repro.fleet import Trace, generate_trace

    if getattr(args, "trace", None):
        return Trace.load(args.trace)
    return generate_trace(
        args.kind,
        num_jobs=args.jobs,
        seed=args.seed,
        horizon_s=args.horizon,
        mean_duration_s=args.mean_duration,
    )


def cmd_fleet_run(args: argparse.Namespace) -> int:
    """Run one trace through the fleet simulator; print or save the result."""
    from repro.fleet import run_fleet

    try:
        trace = _fleet_trace(args)
        injector = (
            _fleet_injector(args.faults, args.fault_seed)
            if args.faults else None
        )
        result = run_fleet(
            trace,
            policy=args.policy,
            autoscaler=args.autoscale,
            injector=injector,
            slo_queue_s=args.slo,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"fleet run: {result.num_jobs} jobs ({result.trace_kind} trace, "
        f"seed {result.trace_seed}), policy {result.policy}, "
        f"autoscaler {result.autoscaler}"
    )
    print(
        f"  completed {result.completed}  rejected {result.rejected}  "
        f"displacements {result.displacements}  "
        f"reschedules {result.reschedules}"
    )
    print(
        f"  makespan {result.makespan_s:.0f}s  "
        f"queue mean/p95 {result.mean_queue_s:.0f}/"
        f"{result.p95_queue_s:.0f}s  "
        f"SLO {result.slo_attainment:.3f}  util {result.utilization:.3f}  "
        f"cost ${result.total_cost:,.0f}"
    )
    for pool in result.pools:
        print(
            f"  pool {pool.name} ({pool.system}): peak {pool.peak_nodes} "
            f"nodes  completed {pool.jobs_completed}  "
            f"failures {pool.node_failures}  "
            f"energy {pool.energy_kwh:.1f} kWh  util {pool.utilization:.3f}"
        )
    if result.fault_fires:
        fires = ", ".join(
            f"{point}={count}"
            for point, count in sorted(result.fault_fires.items())
        )
        print(f"  fault fires: {fires}")
    print(f"  digest {result.digest}")
    if args.out:
        print(f"wrote {args.out}")
    return 0


def cmd_fleet_trace_gen(args: argparse.Namespace) -> int:
    """Generate a seeded arrival trace and write it as replayable JSONL."""
    try:
        trace = _fleet_trace(args)
        trace.save(args.out)
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps({
            "kind": trace.kind,
            "seed": trace.seed,
            "jobs": len(trace),
            "horizon_s": trace.horizon_s,
            "path": args.out,
        }, indent=2, sort_keys=True))
    else:
        print(
            f"wrote {len(trace)} arrivals ({trace.kind} trace, seed "
            f"{trace.seed}, horizon {trace.horizon_s:.0f}s) -> {args.out}"
        )
    return 0


def cmd_fleet_trace_replay(args: argparse.Namespace) -> int:
    """Load a trace file, prove it re-serializes byte-identically, and
    summarize it; exits 1 when the round-trip diverges."""
    from repro.fleet import Trace

    try:
        with open(args.path) as handle:
            original = handle.read()
        trace = Trace.load(args.path)
    except (OSError, ReproError) as exc:
        raise SystemExit(str(exc))
    identical = trace.to_jsonl() == original
    by_model: Dict[str, int] = {}
    for arrival in trace.arrivals:
        by_model[arrival.model] = by_model.get(arrival.model, 0) + 1
    payload = {
        "path": args.path,
        "kind": trace.kind,
        "seed": trace.seed,
        "jobs": len(trace),
        "horizon_s": trace.horizon_s,
        "models": by_model,
        "byte_identical": identical,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        models = ", ".join(
            f"{model}x{count}" for model, count in sorted(by_model.items())
        )
        print(
            f"{args.path}: {len(trace)} arrivals ({trace.kind} trace, seed "
            f"{trace.seed}), models {models}"
        )
        print(
            "round-trip byte-identical"
            if identical
            else "ROUND-TRIP DIVERGED: re-serialized JSONL differs"
        )
    return 0 if identical else 1


def _trend_sources(args: argparse.Namespace):
    """``(batch_journals, serve_indexes, bench_reports, fleet_results)``
    path tuples from the repeatable ``--batch-journal``/``--batch-run``/
    ``--serve-index``/``--bench-report``/``--fleet-result`` flags
    (``--batch-run`` resolves a run id to its journal under the default
    store root / ``$REPRO_CACHE_DIR``)."""
    from repro.batch import BatchJournal

    batch = list(getattr(args, "batch_journal", None) or ())
    for run_id in getattr(args, "batch_run", None) or ():
        try:
            batch.append(BatchJournal.for_run(run_id).path)
        except ReproError as exc:
            raise SystemExit(str(exc))
    serve = tuple(getattr(args, "serve_index", None) or ())
    bench = tuple(getattr(args, "bench_report", None) or ())
    fleet = tuple(getattr(args, "fleet_result", None) or ())
    return tuple(batch), serve, bench, fleet


def _trend_summary_from_sources(args: argparse.Namespace):
    """Build the current run's summary from the source flags."""
    from repro import telemetry

    batch, serve, bench, fleet = _trend_sources(args)
    if not (batch or serve or bench or fleet):
        raise SystemExit(
            "no telemetry sources: pass --batch-journal/--batch-run, "
            "--serve-index, --bench-report, and/or --fleet-result"
        )
    events = telemetry.collect_events(
        batch_journals=batch, serve_indexes=serve, bench_reports=bench,
        fleet_results=fleet,
    )
    meta = {}
    for pair in getattr(args, "meta", None) or ():
        if "=" not in pair:
            raise SystemExit(f"--meta expects KEY=VALUE, got {pair!r}")
        key, _, value = pair.partition("=")
        meta[key.strip()] = value.strip()
    return telemetry.summarize_events(
        events,
        run_id=args.run_id,
        recorded_at=getattr(args, "recorded_at", None),
        meta=meta,
        include_cached=bool(getattr(args, "include_cached", False)),
    )


def _parse_thresholds(pairs) -> Dict[str, float]:
    overrides: Dict[str, float] = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        try:
            if not sep:
                raise ValueError("missing '='")
            overrides[key.strip()] = float(value)
        except ValueError:
            raise SystemExit(
                f"--threshold expects METRIC=RATIO (e.g. elapsed_s=2.0), "
                f"got {pair!r}"
            )
    return overrides


def cmd_trend_record(args: argparse.Namespace) -> int:
    """Summarize run telemetry and commit it to the trend store."""
    from repro import telemetry

    try:
        summary = _trend_summary_from_sources(args)
        path = telemetry.TrendStore(args.store).record(summary)
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"recorded {len(summary.samples)} sample(s) for run "
            f"{summary.run_id!r} -> {path}"
        )
    return 0


def cmd_trend_compare(args: argparse.Namespace) -> int:
    """Compare a run against the store's best-of-N baseline; exit 1 on
    regression (unless ``--fail-on none``)."""
    from repro import telemetry

    store = telemetry.TrendStore(args.store)
    try:
        batch, serve, bench, fleet = _trend_sources(args)
        if batch or serve or bench or fleet:
            current = _trend_summary_from_sources(args)
        else:
            current = store.load(args.run_id)
        baselines = store.baselines(
            count=(
                args.baselines if args.baselines is not None
                else telemetry.DEFAULT_BASELINE_RUNS
            ),
            exclude=current.run_id,
        )
        comparison = telemetry.compare_summaries(
            current,
            baselines,
            thresholds=_parse_thresholds(args.threshold),
            min_elapsed_s=(
                args.min_elapsed if args.min_elapsed is not None
                else telemetry.DEFAULT_MIN_ELAPSED_S
            ),
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.markdown:
        blob = telemetry.render_markdown(comparison)
        if args.markdown == "-":
            print(blob)
        else:
            with open(args.markdown, "w") as handle:
                handle.write(blob + "\n")
    regressions = comparison.regressions()
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        counts = comparison.counts()
        print(
            f"run {comparison.run_id!r} vs "
            f"{len(comparison.baseline_runs)} baseline run(s): "
            f"{counts['regression']} regression(s), "
            f"{counts['improvement']} improvement(s), "
            f"{counts['within']} within band, {counts['new']} new, "
            f"{counts['missing']} missing"
        )
        for delta in regressions:
            print(f"REGRESSION {delta.describe()}")
        for delta in comparison.improvements():
            print(f"improvement {delta.describe()}")
    if regressions and args.fail_on == "regression":
        for delta in regressions:
            print(f"REGRESSION {delta.describe()}", file=sys.stderr)
        return 1
    return 0


def cmd_trend_report(args: argparse.Namespace) -> int:
    """The long-run trend: every committed series' value per run."""
    from repro import telemetry

    store = telemetry.TrendStore(args.store)
    try:
        summaries = store.summaries()
        payload = telemetry.render_history(summaries, metric=args.metric)
    except ReproError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not payload["runs"]:
        print(f"trend store {args.store} has no committed runs")
        return 0
    print("runs: " + ", ".join(payload["runs"]))
    for series in payload["series"]:
        values = ", ".join(
            "-" if value is None else f"{value:g}"
            for value in series["values"]
        )
        print(
            f"{series['source']}/{series['task']}/{series['stage']} "
            f"{series['metric']}: {values}"
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the microbenchmarks; print a table and write the JSON report."""
    from repro import benchmark

    report = benchmark.run_benchmarks(quick=args.quick, seed=args.seed)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(benchmark.render_report(report))
    if args.out:
        benchmark.write_report(report, args.out)
        if not args.json:
            print(f"wrote {args.out}")
    return 0


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batches", type=int, default=200,
                        help="training iterations to simulate")
    parser.add_argument("--queue", type=int, default=16,
                        help="input queue capacity (mini-batches)")
    parser.add_argument("--set", action="append", metavar="FIELD=VALUE",
                        help="calibration override (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="emit RunResult records as JSON")


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--force", action="store_true",
                        help="re-run experiments even when cached")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache root (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro/experiments)")


def _add_batch_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--run-id", default=None, metavar="RUN_ID",
                        help="journal this batch under RUN_ID so an "
                             "interrupted run can be resumed")
    parser.add_argument("--resume", default=None, metavar="RUN_ID",
                        help="replay RUN_ID's journal: skip completed tasks, "
                             "re-run only interrupted/failed ones")
    parser.add_argument("--failure-mode", choices=("strict", "degrade"),
                        default=None,
                        help="strict aborts on the first failure (default); "
                             "degrade keeps going and reports per-task "
                             "outcomes")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PreSto (ISCA 2024) reproduction — experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="run everything, print the full report"
    )
    report.add_argument("--parallel", action="store_true",
                        help="fan experiments out across a process pool "
                             "(output is byte-identical to serial)")
    report.add_argument("--processes", type=int, default=None,
                        help="pool size for --parallel")
    report.add_argument("--only", default=None, metavar="KINDS",
                        help="comma list of figures|tables|ablations")
    report.add_argument("--json", action="store_true",
                        help="emit the structured report payload as JSON")
    _add_cache_options(report)
    _add_batch_options(report)
    report.set_defaults(func=cmd_report)

    list_parser = sub.add_parser("list", help="list experiment ids")
    list_parser.add_argument("--only", default=None, metavar="KINDS",
                             help="comma list of figures|tables|ablations")
    list_parser.add_argument("--json", action="store_true",
                             help="emit the experiment catalog as JSON")
    list_parser.set_defaults(func=cmd_list)

    run_parser = sub.add_parser(
        "run", help="run experiments by id, or one scenario via --model/--system"
    )
    run_parser.add_argument("ids", nargs="*", help="experiment ids (see `list`)")
    run_parser.add_argument("--model", help="Table I model for a scenario run")
    run_parser.add_argument("--system", help="registered system (see `systems`)")
    run_parser.add_argument("--gpus", type=int, default=8)
    run_parser.add_argument("--workers", type=int, default=None,
                            help="explicit worker count (default: ceil(T/P))")
    _add_scenario_options(run_parser)
    run_parser.set_defaults(func=cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="run a models x systems x gpus scenario grid in parallel"
    )
    sweep_parser.add_argument("--models", default=",".join(MODEL_NAMES),
                              help="comma-separated Table I models")
    sweep_parser.add_argument("--systems", default="Disagg,PreSto",
                              help="comma-separated registered systems")
    sweep_parser.add_argument("--gpus", default="8",
                              help="comma-separated GPU counts")
    sweep_parser.add_argument("--serial", action="store_true",
                              help="run scenarios serially (default: parallel)")
    sweep_parser.add_argument("--processes", type=int, default=None,
                              help="pool size for parallel execution")
    sweep_parser.add_argument("--task-timeout", type=float, default=None,
                              help="wall-clock seconds before a scenario is "
                                   "abandoned (parallel runs only)")
    sweep_parser.add_argument("--max-retries", type=int, default=1,
                              help="retries per scenario before it counts "
                                   "as failed")
    _add_scenario_options(sweep_parser)
    _add_batch_options(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    sub.add_parser(
        "systems", help="list registered system design points"
    ).set_defaults(func=cmd_systems)

    export = sub.add_parser(
        "export", help="write experiment rows (with header) as CSV/JSON"
    )
    export.add_argument("--dir", default="results")
    export.add_argument("--format", choices=("csv", "json"), default="csv",
                        help="output format (default csv)")
    export.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    _add_cache_options(export)
    export.set_defaults(func=cmd_export)

    prov = sub.add_parser("provision", help="T/P provisioning for one model")
    prov.add_argument("model", choices=MODEL_NAMES + [m.lower() for m in MODEL_NAMES])
    prov.add_argument("--gpus", type=int, default=8)
    prov.set_defaults(func=cmd_provision)

    prep = sub.add_parser(
        "preprocess",
        help="run the sharded preprocessing data plane for one model",
    )
    prep.add_argument("--model", default="RM1",
                      help="Table I model (default RM1)")
    prep.add_argument("--rows", type=int, default=8192,
                      help="synthetic rows to preprocess")
    prep.add_argument("--shards", type=int, default=1,
                      help="number of partitions / mini-batches")
    prep.add_argument("--processes", type=int, default=None,
                      help="pool size (default: CPU count)")
    prep.add_argument("--seed", type=int, default=0,
                      help="synthetic data seed")
    prep.add_argument("--serial", action="store_true",
                      help="run shards inline instead of across a pool")
    prep.add_argument("--check", action="store_true",
                      help="also run serially and assert byte-identical output")
    prep.add_argument("--json", action="store_true",
                      help="emit the summary as JSON")
    prep.set_defaults(func=cmd_preprocess)

    serve = sub.add_parser(
        "serve", help="run the streaming preprocessing daemon"
    )
    serve.add_argument("--spool", default=DEFAULT_SPOOL,
                       help="spool directory (job index + endpoint file)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default 0 = ephemeral; the chosen "
                            "port lands in the spool's endpoint.json)")
    serve.add_argument("--queue", type=int, default=16,
                       help="bounded queue capacity (default 16)")
    serve.add_argument("--workers", type=int, default=2,
                       help="persistent pool size (default 2)")
    serve.add_argument("--policy", choices=("block", "reject"),
                       default="block",
                       help="full-queue backpressure: block or reject")
    serve.add_argument("--max-retries", type=int, default=1,
                       help="extra attempts per job on transient failure")
    serve.add_argument("--backoff", type=float, default=0.05,
                       help="base retry backoff seconds (doubles per retry)")
    serve.add_argument("--poll", type=float, default=0.2,
                       help="source watcher poll interval seconds")
    serve.add_argument("--watch", action="append", metavar="DIR",
                       help="watch a directory for dropped job-spec JSON "
                            "files (repeatable)")
    serve.add_argument("--synthetic", action="append", metavar="SPEC",
                       help="attach a synthetic source, "
                            "MODEL[:ROWS[:SHARDS[:COUNT]]] (repeatable)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="per-job deadline in seconds; a watchdog fails "
                            "jobs that blow it and replaces their worker")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip fsync on job-index appends (faster, but a "
                            "host crash can lose the latest transitions)")
    serve.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="install a FaultPlan JSON file (deterministic "
                            "fault injection, for drills and tests)")
    serve.set_defaults(func=cmd_serve)

    def client_parser(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--spool", default=DEFAULT_SPOOL,
                       help="daemon spool directory (endpoint discovery)")
        p.add_argument("--host", default=None,
                       help="daemon host (overrides endpoint file)")
        p.add_argument("--port", type=int, default=None,
                       help="daemon port (overrides endpoint file)")
        return p

    submit = client_parser("submit", "submit one job to a running daemon")
    submit.add_argument("--model", default="RM1",
                        help="Table I model (default RM1)")
    submit.add_argument("--rows", type=int, default=8192,
                        help="synthetic rows to preprocess")
    submit.add_argument("--shards", type=int, default=1,
                        help="number of partitions / mini-batches")
    submit.add_argument("--processes", type=int, default=None,
                        help="per-job data-plane pool size")
    submit.add_argument("--seed", type=int, default=0,
                        help="synthetic data seed")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal")
    submit.add_argument("--timeout", type=float, default=None,
                        help="--wait timeout in seconds")
    submit.add_argument("--json", action="store_true",
                        help="emit the job record as JSON")
    submit.set_defaults(func=cmd_submit)

    status = client_parser("status", "show one job's lifecycle record")
    status.add_argument("job_id", help="job id (see `jobs`)")
    status.add_argument("--follow", action="store_true",
                        help="stream transitions until the job is terminal")
    status.add_argument("--timeout", type=float, default=None,
                        help="--follow timeout in seconds")
    status.add_argument("--json", action="store_true",
                        help="emit the job record as JSON")
    status.set_defaults(func=cmd_status)

    jobs = client_parser("jobs", "list the daemon's jobs")
    jobs.add_argument("--state", default=None,
                      choices=("queued", "running", "interrupted",
                               "completed", "failed", "cancelled"),
                      help="only jobs in this state")
    jobs.add_argument("--json", action="store_true",
                      help="emit job records as JSON")
    jobs.set_defaults(func=cmd_jobs)

    cancel = client_parser("cancel", "cancel a queued job")
    cancel.add_argument("job_id", help="job id (see `jobs`)")
    cancel.set_defaults(func=cmd_cancel)

    shutdown = client_parser("shutdown", "stop a running daemon")
    shutdown.add_argument("--no-drain", action="store_true",
                          help="cancel queued jobs instead of draining them")
    shutdown.set_defaults(func=cmd_shutdown)

    chaos = sub.add_parser(
        "chaos",
        help="run the seeded fault matrix against a live service",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault plan seed (same seed => same matrix)")
    chaos.add_argument("--faults", default=None,
                       help="comma-separated fault classes (default: the "
                            "tier's fault matrix)")
    chaos.add_argument("--tier", choices=("serve", "batch", "fleet"),
                       default="serve",
                       help="which tier to attack: the streaming service, "
                            "the batch runner, or the simulated fleet "
                            "(default serve)")
    chaos.add_argument("--jobs", type=int, default=6,
                       help="jobs per episode (default 6)")
    chaos.add_argument("--rows", type=int, default=512,
                       help="synthetic rows per job (default 512)")
    chaos.add_argument("--shards", type=int, default=2,
                       help="shards per job (default 2)")
    chaos.add_argument("--workers", type=int, default=2,
                       help="pool workers per episode (default 2)")
    chaos.add_argument("--timeout", type=float, default=5.0,
                       help="per-job watchdog deadline seconds (default 5)")
    chaos.add_argument("--spool-root", default=None, metavar="DIR",
                       help="keep each episode's spool (journals, indexes) "
                            "under DIR instead of a deleted temp dir — CI "
                            "uploads these and feeds them to `repro trend "
                            "record`")
    chaos.add_argument("--json", action="store_true",
                       help="emit the deterministic report as JSON")
    chaos.set_defaults(func=cmd_chaos)

    fleet = sub.add_parser(
        "fleet",
        help="trace-driven multi-tenant fleet simulation (scheduling, "
             "autoscaling, failure injection)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def _add_fleet_trace_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--kind", choices=("poisson", "diurnal", "bursty"),
                       default="diurnal",
                       help="arrival process (default diurnal)")
        p.add_argument("--jobs", type=int, default=200,
                       help="number of arrivals to generate (default 200)")
        p.add_argument("--seed", type=int, default=0,
                       help="trace seed (same seed => same trace)")
        p.add_argument("--horizon", type=float, default=86400.0,
                       metavar="SECONDS",
                       help="trace horizon in simulated seconds "
                            "(default 86400 = one day)")
        p.add_argument("--mean-duration", type=float, default=5400.0,
                       metavar="SECONDS",
                       help="mean job duration (default 5400)")

    fleet_run = fleet_sub.add_parser(
        "run", help="simulate one trace on the fleet; print the result"
    )
    fleet_run.add_argument("--trace", default=None, metavar="PATH",
                           help="replay a recorded JSONL trace instead of "
                                "generating one")
    _add_fleet_trace_options(fleet_run)
    fleet_run.add_argument("--policy", default="first-fit",
                           help="placement policy (default first-fit; see "
                                "repro.fleet.available_policies)")
    fleet_run.add_argument("--autoscale", default="target-utilization",
                           help="autoscaling policy (default "
                                "target-utilization)")
    fleet_run.add_argument("--faults", default=None,
                           help="comma-separated fleet faults to inject "
                                "(node-down, slow-node, arrival-burst)")
    fleet_run.add_argument("--fault-seed", type=int, default=0,
                           help="fault plan seed (default 0)")
    fleet_run.add_argument("--slo", type=float, default=1800.0,
                           metavar="SECONDS",
                           help="queueing SLO threshold (default 1800)")
    fleet_run.add_argument("--out", default=None, metavar="PATH",
                           help="also write the FleetResult as JSON (feeds "
                                "repro trend --fleet-result)")
    fleet_run.add_argument("--json", action="store_true",
                           help="print the full result as byte-stable JSON")
    fleet_run.set_defaults(func=cmd_fleet_run)

    fleet_trace = fleet_sub.add_parser(
        "trace", help="generate or inspect replayable arrival traces"
    )
    fleet_trace_sub = fleet_trace.add_subparsers(
        dest="fleet_trace_command", required=True
    )

    trace_gen = fleet_trace_sub.add_parser(
        "gen", help="generate a seeded trace as replayable JSONL"
    )
    _add_fleet_trace_options(trace_gen)
    trace_gen.add_argument("--out", required=True, metavar="PATH",
                           help="JSONL output path")
    trace_gen.add_argument("--json", action="store_true",
                           help="print the trace summary as JSON")
    trace_gen.set_defaults(func=cmd_fleet_trace_gen)

    trace_replay = fleet_trace_sub.add_parser(
        "replay",
        help="load a trace file, verify it re-serializes byte-identically, "
             "and summarize it",
    )
    trace_replay.add_argument("path", help="trace JSONL path")
    trace_replay.add_argument("--json", action="store_true",
                              help="print the summary as JSON")
    trace_replay.set_defaults(func=cmd_fleet_trace_replay)

    trend = sub.add_parser(
        "trend",
        help="record run telemetry and compare it against the committed "
             "trend baseline",
    )
    trend_sub = trend.add_subparsers(dest="trend_command", required=True)

    def _add_trend_source_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--batch-journal", action="append", metavar="PATH",
                       help="batch run journal (.jsonl) to read "
                            "(repeatable)")
        p.add_argument("--batch-run", action="append", metavar="RUN_ID",
                       help="batch run id; resolves to its journal under "
                            "the default store root / $REPRO_CACHE_DIR "
                            "(repeatable)")
        p.add_argument("--serve-index", action="append", metavar="PATH",
                       help="serve job index (jobs.jsonl) to read "
                            "(repeatable)")
        p.add_argument("--bench-report", action="append", metavar="PATH",
                       help="repro bench JSON report to read (repeatable)")
        p.add_argument("--fleet-result", action="append", metavar="PATH",
                       help="fleet result JSON (repro fleet run --out) to "
                            "read (repeatable)")
        p.add_argument("--include-cached", action="store_true",
                       help="keep cache-replayed timings (excluded by "
                            "default: a cache hit is not a measurement)")
        p.add_argument("--recorded-at", type=float, default=None,
                       metavar="EPOCH_S",
                       help="summary timestamp override (default: now; "
                            "pin it for reproducible stores)")
        p.add_argument("--meta", action="append", metavar="KEY=VALUE",
                       help="summary metadata, e.g. host=ci (repeatable)")

    trend_record = trend_sub.add_parser(
        "record", help="summarize run telemetry into the trend store"
    )
    trend_record.add_argument("--store", default="benchmarks/trend",
                              help="trend store directory "
                                   "(default benchmarks/trend)")
    trend_record.add_argument("--run-id", required=True,
                              help="summary id (one file per run id)")
    _add_trend_source_options(trend_record)
    trend_record.add_argument("--json", action="store_true",
                              help="print the recorded summary as JSON")
    trend_record.set_defaults(func=cmd_trend_record)

    trend_compare = trend_sub.add_parser(
        "compare",
        help="compare a run against the store's best-of-N baseline; "
             "exits 1 on regression",
    )
    trend_compare.add_argument("--store", default="benchmarks/trend",
                               help="trend store directory "
                                    "(default benchmarks/trend)")
    trend_compare.add_argument("--run-id", required=True,
                               help="the run to compare (loaded from the "
                                    "store unless source flags are given)")
    _add_trend_source_options(trend_compare)
    trend_compare.add_argument("--baselines", type=int, default=None,
                               metavar="N",
                               help="best-of-N baseline pool size "
                                    "(default 5)")
    trend_compare.add_argument("--threshold", action="append",
                               metavar="METRIC=RATIO",
                               help="per-metric regression threshold "
                                    "override, e.g. elapsed_s=2.0 "
                                    "(repeatable)")
    trend_compare.add_argument("--min-elapsed", type=float, default=None,
                               metavar="SECONDS",
                               help="wall-clock noise floor: elapsed_s "
                                    "series under this on both sides never "
                                    "regress (default 0.05)")
    trend_compare.add_argument("--fail-on",
                               choices=("regression", "none"),
                               default="regression",
                               help="'regression' (default) exits 1 on any "
                                    "regression; 'none' is report-only")
    trend_compare.add_argument("--markdown", default=None, metavar="PATH",
                               help="also write the comparison table as "
                                    "markdown ('-' for stdout)")
    trend_compare.add_argument("--json", action="store_true",
                               help="print the comparison as byte-stable "
                                    "JSON")
    trend_compare.set_defaults(func=cmd_trend_compare)

    trend_report = trend_sub.add_parser(
        "report", help="print the long-run trend across committed runs"
    )
    trend_report.add_argument("--store", default="benchmarks/trend",
                              help="trend store directory "
                                   "(default benchmarks/trend)")
    trend_report.add_argument("--metric", default=None,
                              help="restrict to one metric "
                                   "(e.g. elapsed_s)")
    trend_report.add_argument("--json", action="store_true",
                              help="print the byte-stable JSON payload")
    trend_report.set_defaults(func=cmd_trend_report)

    bench = sub.add_parser(
        "bench", help="run kernel microbenchmarks, write BENCH_kernels.json"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small inputs for CI smoke runs")
    bench.add_argument("--seed", type=int, default=0,
                       help="rng seed for benchmark inputs")
    bench.add_argument("--out", default="BENCH_kernels.json",
                       help="JSON report path ('' to skip writing)")
    bench.add_argument("--json", action="store_true",
                       help="print the JSON report instead of the table")
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

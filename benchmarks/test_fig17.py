"""Benchmark: regenerate the paper's Fig17 via repro.experiments.fig17_sensitivity."""

from conftest import assert_claims, report

from repro.experiments import fig17_sensitivity


def test_fig17(benchmark):
    """Time the fig17 experiment and verify its paper claims."""
    result = benchmark(fig17_sensitivity.run)
    report(result)
    assert_claims(result)

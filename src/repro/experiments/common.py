"""Shared plumbing for the experiment modules.

Experiments construct systems through the :mod:`repro.api` registry (one
front door for built-in and user-registered design points alike) and, when
they take a custom :class:`Calibration`, translate it to the override form
:class:`~repro.api.scenario.Scenario` stores via :func:`scenario_for`.

Each experiment module registers its ``run()`` function with the experiment
registry via :func:`register_experiment` and returns an
:class:`ExperimentResult` subclass — both re-exported here so the modules
have a single import site for the harness plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence

from repro.api.experiment import ExperimentResult, register_experiment
from repro.api.registry import REGISTRY
from repro.api.scenario import Scenario, calibration_overrides
from repro.features.specs import MODEL_NAMES, ModelSpec, all_models
from repro.hardware.calibration import CALIBRATION, Calibration

__all__ = [
    "ExperimentResult",
    "PaperClaim",
    "build_system",
    "format_table",
    "model_names",
    "models",
    "register_experiment",
    "scenario_for",
]


def models() -> List[ModelSpec]:
    """The five Table I models in evaluation order."""
    return all_models()


def model_names() -> List[str]:
    """RM1..RM5."""
    return list(MODEL_NAMES)


def build_system(
    name: str, spec: ModelSpec, calibration: Calibration = CALIBRATION
):
    """One registered system design point by name (registry front door)."""
    return REGISTRY.create(name, spec, calibration)


def scenario_for(
    model: str,
    system: str,
    calibration: Calibration = CALIBRATION,
    **kwargs,
) -> Scenario:
    """A validated Scenario from an experiment's (model, system, calibration)
    arguments — the Calibration instance becomes Scenario overrides."""
    return Scenario(
        model=model,
        system=system,
        calibration=calibration_overrides(calibration),
        **kwargs,
    )


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative claim from the paper, for paper-vs-measured rows."""

    description: str
    paper_value: float
    measured_value: float
    tolerance: float = 0.35  # relative tolerance for "shape holds"

    @property
    def relative_error(self) -> float:
        """|measured - paper| / paper."""
        if self.paper_value == 0:
            return abs(self.measured_value)
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)

    @property
    def holds(self) -> bool:
        """Whether the measured value is within tolerance of the paper's."""
        return self.relative_error <= self.tolerance

    def render(self) -> str:
        status = "OK " if self.holds else "OFF"
        return (
            f"  [{status}] {self.description}: paper {self.paper_value:g}, "
            f"measured {self.measured_value:.3g} "
            f"(err {100 * self.relative_error:.0f}%)"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for ``repro report --json`` and the CI scoreboard."""
        return {
            "description": self.description,
            "paper_value": self.paper_value,
            "measured_value": self.measured_value,
            "tolerance": self.tolerance,
            "relative_error": self.relative_error,
            "holds": self.holds,
        }


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (the harness's 'figure')."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)

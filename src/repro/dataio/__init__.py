"""Columnar storage substrate.

This package is the reproduction's stand-in for Apache Parquet: a
self-contained columnar file format with row groups, per-column encodings
(plain / varint / run-length / dictionary), CRC-checked pages, and a footer
that enables selective column reads — the property Section II-B of the paper
relies on ("fetch features X and W without fetching Y and Z").
"""

from repro.dataio.schema import (
    ColumnKind,
    DenseFeature,
    SparseFeature,
    LabelColumn,
    TableSchema,
)
from repro.dataio.encoding import (
    Encoding,
    encode_column,
    decode_column,
    encoded_size,
)
from repro.dataio.columnar import (
    ColumnarFileWriter,
    ColumnarFileReader,
    ColumnChunk,
    FileFooter,
    write_table,
    read_columns,
)
from repro.dataio.partition import RowPartitioner, Partition

__all__ = [
    "ColumnKind",
    "DenseFeature",
    "SparseFeature",
    "LabelColumn",
    "TableSchema",
    "Encoding",
    "encode_column",
    "decode_column",
    "encoded_size",
    "ColumnarFileWriter",
    "ColumnarFileReader",
    "ColumnChunk",
    "FileFooter",
    "write_table",
    "read_columns",
    "RowPartitioner",
    "Partition",
]

"""Shard-parallel preprocessing execution engine.

Section IV-B of the paper shards a logical table into per-mini-batch
partitions stored as independent columnar files, precisely so different
workers can preprocess different partitions concurrently.  The simulation
layer models that concurrency; this module *performs* it:

1. :class:`~repro.dataio.partition.RowPartitioner` slices the raw table
   into partitions, each serialized as its own columnar file (Store);
2. every shard is read back column-selectively (Extract) and pushed
   through one shared :class:`~repro.ops.pipeline.PreprocessingPipeline`
   (Transform) into a train-ready mini-batch;
3. shards fan out across a ``multiprocessing`` pool; results always come
   back in partition order with ``batch_id == partition.index``, so a
   parallel run is bit-identical to the serial one (the same guarantee
   :class:`repro.api.Sweep` makes for scenario grids).

The pool workers receive the pipeline once (pool initializer), not per
shard, so the per-pipeline caches — bucket boundary structures, hash
constants — are amortized across every shard a worker handles.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.dataio.columnar import ColumnarFileReader, TableData
from repro.dataio.partition import Partition, RowPartitioner
from repro.errors import ExecutionError
from repro.faults.injector import fault_stage
from repro.features.minibatch import MiniBatch
from repro.ops.pipeline import OpCounts, PreprocessingPipeline

#: stage telemetry hook: (stage, "started"|"completed", summary metrics)
StageCallback = Callable[[str, str, Dict[str, float]], None]

#: pipeline shared by every task a pool worker runs (set by the initializer)
_WORKER_PIPELINE: Optional[PreprocessingPipeline] = None


def _init_worker(pipeline: PreprocessingPipeline) -> None:
    """Pool initializer: unpickle the pipeline once per worker process."""
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline


def _run_worker_shard(task: Tuple[int, bytes]) -> "ShardResult":
    """Module-level map target so pool workers can unpickle it."""
    index, file_bytes = task
    return _transform_shard(_WORKER_PIPELINE, index, file_bytes)


def _transform_shard(
    pipeline: PreprocessingPipeline, index: int, file_bytes: bytes
) -> "ShardResult":
    """Extract one partition's columns and transform them (one shard)."""
    reader = ColumnarFileReader(file_bytes)
    raw = reader.read_columns(pipeline.required_columns())
    batch, counts = pipeline.run(raw, batch_id=index)
    return ShardResult(
        index=index,
        batch=batch,
        counts=counts,
        file_bytes=len(file_bytes),
        bytes_read=reader.bytes_read,
    )


@dataclass
class ShardResult:
    """One preprocessed shard: the mini-batch plus its work accounting."""

    index: int
    batch: MiniBatch
    counts: OpCounts
    file_bytes: int  # encoded size of the shard's columnar file
    bytes_read: int  # bytes the Extract phase actually touched


@dataclass
class ShardRunStats:
    """Aggregate accounting of one executor run."""

    num_shards: int
    num_rows: int
    file_bytes: int
    bytes_read: int
    transform_elements: int

    @classmethod
    def from_results(cls, results: List[ShardResult]) -> "ShardRunStats":
        return cls(
            num_shards=len(results),
            num_rows=sum(r.counts.rows for r in results),
            file_bytes=sum(r.file_bytes for r in results),
            bytes_read=sum(r.bytes_read for r in results),
            transform_elements=sum(
                r.counts.transform_elements for r in results
            ),
        )


class ShardExecutor:
    """Map table partitions through write -> read -> pipeline, in parallel.

    ``processes`` bounds the pool (default: the machine's CPU count);
    ``parallel=False`` — or a single shard, or a one-process pool — runs
    the shards inline through :meth:`PreprocessingPipeline.run_many`.
    Either way the returned shards are ordered by partition index and
    bit-identical between modes.
    """

    def __init__(
        self,
        pipeline: PreprocessingPipeline,
        rows_per_shard: int = 8192,
        processes: Optional[int] = None,
    ) -> None:
        if rows_per_shard <= 0:
            raise ExecutionError("rows_per_shard must be positive")
        if processes is not None and processes <= 0:
            raise ExecutionError("processes must be positive when given")
        self.pipeline = pipeline
        self.rows_per_shard = rows_per_shard
        self.processes = processes
        self.partitioner = RowPartitioner(
            pipeline.schema, rows_per_partition=rows_per_shard
        )

    @classmethod
    def for_shards(
        cls,
        pipeline: PreprocessingPipeline,
        num_shards: int,
        num_rows: int,
        processes: Optional[int] = None,
    ) -> "ShardExecutor":
        """Size shards so ``num_rows`` split into (at most) ``num_shards``.

        A shard holds at least one row, so asking for more shards than rows
        yields one single-row shard per row — never an empty shard.
        """
        if num_shards <= 0:
            raise ExecutionError("num_shards must be positive")
        if num_rows <= 0:
            raise ExecutionError("num_rows must be positive")
        rows_per_shard = max(1, math.ceil(num_rows / num_shards))
        return cls(pipeline, rows_per_shard=rows_per_shard, processes=processes)

    # -- execution ---------------------------------------------------------

    def _pool_size(self, num_shards: int) -> int:
        limit = self.processes or os.cpu_count() or 1
        return max(1, min(limit, num_shards))

    def run(
        self, data: TableData, parallel: bool = True
    ) -> List[ShardResult]:
        """Preprocess every partition of ``data``; results in shard order."""
        partitions = self.partitioner.partition_all(data)
        workers = self._pool_size(len(partitions)) if parallel else 1
        if workers <= 1 or len(partitions) <= 1:
            return self._run_serial(partitions)
        tasks = [(p.index, p.file_bytes) for p in partitions]
        with multiprocessing.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(self.pipeline,),
        ) as pool:
            # map() preserves input order, so parallel == serial ordering
            return pool.map(_run_worker_shard, tasks)

    def _run_serial(self, partitions: List[Partition]) -> List[ShardResult]:
        """Inline path: Extract every shard, then one fused Transform pass."""
        return self._extract_transform(partitions, lambda stage, status, m: None)

    def _extract_transform(
        self,
        partitions: List[Partition],
        notify: "StageCallback",
    ) -> List[ShardResult]:
        wanted = self.pipeline.required_columns()
        fault_stage("extract", seed=self.pipeline.generator_seed)
        notify("extract", "started", {})
        start = time.perf_counter()
        readers = [ColumnarFileReader(p.file_bytes) for p in partitions]
        raws = [reader.read_columns(wanted) for reader in readers]
        notify(
            "extract",
            "completed",
            {
                "elapsed_s": time.perf_counter() - start,
                "bytes_read": sum(r.bytes_read for r in readers),
                "file_bytes": sum(p.size for p in partitions),
            },
        )
        fault_stage("transform", seed=self.pipeline.generator_seed)
        notify("transform", "started", {})
        start = time.perf_counter()
        transformed = self.pipeline.run_many(
            raws, start_batch_id=partitions[0].index if partitions else 0
        )
        results = [
            ShardResult(
                index=partition.index,
                batch=batch,
                counts=counts,
                file_bytes=partition.size,
                bytes_read=reader.bytes_read,
            )
            for partition, reader, (batch, counts) in zip(
                partitions, readers, transformed
            )
        ]
        notify(
            "transform",
            "completed",
            {
                "elapsed_s": time.perf_counter() - start,
                "batches": len(results),
                "transform_elements": sum(
                    r.counts.transform_elements for r in results
                ),
            },
        )
        return results

    def run_staged(
        self, data: TableData, on_stage: Optional["StageCallback"] = None
    ) -> List[ShardResult]:
        """Serial run emitting structured stage telemetry.

        ``on_stage(stage, status, metrics)`` fires with status ``started``
        then ``completed`` for each of the pipeline's stages — ``partition``
        (slice + columnar write), ``extract`` (selective column read), and
        ``transform`` (the fused op pipeline) — with summary metrics on
        completion.  A failing stage raises; the caller records the failure
        and marks the stages that never ran as skipped.  Output is
        bit-identical to :meth:`run` (the streaming service's digest check
        depends on exactly that).
        """
        notify = on_stage or (lambda stage, status, metrics: None)
        fault_stage("partition", seed=self.pipeline.generator_seed)
        notify("partition", "started", {})
        start = time.perf_counter()
        partitions = self.partitioner.partition_all(data)
        notify(
            "partition",
            "completed",
            {
                "elapsed_s": time.perf_counter() - start,
                "shards": len(partitions),
                "rows": sum(p.num_rows for p in partitions),
                "file_bytes": sum(p.size for p in partitions),
            },
        )
        return self._extract_transform(partitions, notify)

    def run_batches(
        self, data: TableData, parallel: bool = True
    ) -> List[MiniBatch]:
        """Just the ordered mini-batches of :meth:`run`."""
        return [result.batch for result in self.run(data, parallel=parallel)]

    def iter_shards(self, data: TableData) -> Iterator[ShardResult]:
        """Stream shards serially without materializing every partition."""
        for partition in self.partitioner.partitions(data):
            yield _transform_shard(
                self.pipeline, partition.index, partition.file_bytes
            )


def run_preprocessing(
    pipeline: PreprocessingPipeline,
    data: TableData,
    num_shards: int = 1,
    processes: Optional[int] = None,
    parallel: bool = True,
) -> Tuple[List[ShardResult], ShardRunStats]:
    """One-call front door: shard ``data`` ``num_shards`` ways and run."""
    num_rows = len(data[pipeline.schema.label.name])
    executor = ShardExecutor.for_shards(
        pipeline, num_shards=num_shards, num_rows=num_rows, processes=processes
    )
    results = executor.run(data, parallel=parallel)
    return results, ShardRunStats.from_results(results)

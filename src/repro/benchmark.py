"""Microbenchmarks of the repo's hot paths — the ``repro bench`` backend.

The paper's argument is preprocessing *throughput*; this module gives the
reproduction a recorded performance trajectory of its own.  Each benchmark
times one hot path — the vectorized column codecs, the row-format
writer/reader, ingestion batch assembly, the discrete-event kernel, and the
preprocessing op kernels — and, where an element-at-a-time reference
implementation survives (``*_scalar``), times it on the same input and
reports the speedup.  Every scalar/vectorized pair is asserted to produce
identical output before its timing is trusted, so a bench run doubles as a
correctness cross-check.

Results are emitted as ``BENCH_kernels.json``::

    {
      "schema_version": 1,
      "quick": false,
      "python": "3.12.3",
      "numpy": "1.26.4",
      "results": [
        {"op": "varint_encode", "variant": "vectorized", "size": 1000000,
         "elapsed_s": 0.044, "ns_per_element": 44.1, "mb_per_s": 181.3,
         "speedup_vs_scalar": 12.8},
        ...
      ]
    }

``size`` counts logical elements (column values, table cells, or simulated
events), ``ns_per_element`` is ``elapsed_s / size`` and ``mb_per_s`` is the
logical payload bytes moved per second.  Timings are best-of-``reps`` to
shed scheduler noise; ``speedup_vs_scalar`` compares against the scalar
reference measured in the same run, so the ratio is robust to machine
differences even though absolute numbers are not.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ReproError

_SCHEMA_VERSION = 1


@dataclass
class BenchResult:
    """One timed (op, variant) measurement."""

    op: str
    variant: str  # "scalar" or "vectorized"
    size: int  # logical elements processed per call
    elapsed_s: float  # best-of-reps wall time of one call
    ns_per_element: float
    mb_per_s: float
    speedup_vs_scalar: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {k: v for k, v in asdict(self).items() if v is not None}


def _best_of(fn: Callable[[], object], reps: int) -> float:
    """Best wall-clock time of ``reps`` calls (first call warms caches)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _result(
    op: str,
    variant: str,
    size: int,
    payload_bytes: int,
    elapsed_s: float,
    scalar_elapsed_s: Optional[float] = None,
) -> BenchResult:
    return BenchResult(
        op=op,
        variant=variant,
        size=size,
        elapsed_s=elapsed_s,
        ns_per_element=1e9 * elapsed_s / max(size, 1),
        mb_per_s=payload_bytes / 1e6 / elapsed_s if elapsed_s else 0.0,
        speedup_vs_scalar=(
            scalar_elapsed_s / elapsed_s if scalar_elapsed_s is not None else None
        ),
    )


def _pair(
    op: str,
    size: int,
    payload_bytes: int,
    scalar_fn: Callable[[], object],
    vector_fn: Callable[[], object],
    reps: int,
    check: Callable[[object, object], None],
) -> List[BenchResult]:
    """Time a scalar/vectorized pair after asserting identical output.

    The two variants are timed in alternation so transient machine load
    hits both sides equally and the reported speedup ratio stays robust.
    """
    check(scalar_fn(), vector_fn())  # doubles as the warm-up pass
    scalar_t = vector_t = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        scalar_fn()
        scalar_t = min(scalar_t, time.perf_counter() - start)
        # the scalar pass churns tens of MB of Python objects, which evicts
        # the vectorized path's working set; one untimed call restores the
        # steady state the vectorized path actually runs in
        vector_fn()
        start = time.perf_counter()
        vector_fn()
        vector_t = min(vector_t, time.perf_counter() - start)
    return [
        _result(op, "scalar", size, payload_bytes, scalar_t),
        _result(op, "vectorized", size, payload_bytes, vector_t, scalar_t),
    ]


def _check_bytes(a: object, b: object) -> None:
    if a != b:
        raise ReproError("vectorized output is not byte-identical to scalar")


def _check_arrays(a: object, b: object) -> None:
    if not np.array_equal(a, b):
        raise ReproError("vectorized output differs from scalar reference")


# --------------------------------------------------------------------------
# individual benchmarks
# --------------------------------------------------------------------------


def bench_varint(size: int, reps: int, rng: np.random.Generator) -> List[BenchResult]:
    """LEB128 zig-zag encode/decode of one integer column."""
    from repro.dataio import encoding as enc

    column = rng.integers(-(2**40), 2**40, size).astype(np.int64)
    results = _pair(
        "varint_encode",
        size,
        column.nbytes,
        lambda: enc._encode_varint_scalar(column),
        lambda: enc._encode_varint(column),
        reps,
        _check_bytes,
    )
    payload = enc._encode_varint(column)
    dtype = np.dtype(np.int64)
    results += _pair(
        "varint_decode",
        size,
        column.nbytes,
        lambda: enc._decode_varint_scalar(payload, dtype, size),
        lambda: enc._decode_varint(payload, dtype, size),
        reps,
        _check_arrays,
    )
    # the full codec round trip (what a store-then-extract cycle pays)
    results += _pair(
        "varint_roundtrip",
        size,
        column.nbytes,
        lambda: enc._decode_varint_scalar(
            enc._encode_varint_scalar(column), dtype, size
        ),
        lambda: enc._decode_varint(enc._encode_varint(column), dtype, size),
        reps,
        _check_arrays,
    )
    return results


def bench_rle(size: int, reps: int, rng: np.random.Generator) -> List[BenchResult]:
    """Run-length encode/decode of a run-heavy column (labels, lengths)."""
    from repro.dataio import encoding as enc

    num_runs = max(size // 20, 1)
    column = np.repeat(
        rng.integers(0, 8, num_runs), rng.integers(1, 40, num_runs)
    ).astype(np.int64)[:size]
    size = len(column)
    results = _pair(
        "rle_encode",
        size,
        column.nbytes,
        lambda: enc._encode_rle_scalar(column),
        lambda: enc._encode_rle(column),
        reps,
        _check_bytes,
    )
    payload = enc._encode_rle(column)
    dtype = np.dtype(np.int64)
    results += _pair(
        "rle_decode",
        size,
        column.nbytes,
        lambda: enc._decode_rle_scalar(payload, dtype, size),
        lambda: enc._decode_rle(payload, dtype, size),
        reps,
        _check_arrays,
    )
    return results


def _row_table(total_ids: int, rng: np.random.Generator):
    """A 3-dense/2-sparse table holding ~``total_ids`` sparse ids."""
    from repro.dataio.schema import TableSchema

    avg_len = 10
    num_rows = max(total_ids // (2 * avg_len), 1)
    schema = TableSchema.with_counts(3, 2)
    data = {"label": (rng.random(num_rows) < 0.3).astype(np.int8)}
    for name in schema.dense_names:
        column = rng.random(num_rows).astype(np.float32)
        column[rng.random(num_rows) < 0.05] = np.nan
        data[name] = column
    for name in schema.sparse_names:
        lengths = rng.integers(0, 2 * avg_len + 1, num_rows).astype(np.int32)
        values = rng.integers(0, 2**40, int(lengths.sum())).astype(np.int64)
        data[name] = (lengths, values)
    return schema, data


def bench_rowformat(
    size: int, reps: int, rng: np.random.Generator
) -> List[BenchResult]:
    """Row-format write, record scan (scalar vs batched), and read-back."""
    from repro.dataio.rowformat import RowFileReader, RowFileWriter

    schema, data = _row_table(size, rng)
    writer = RowFileWriter(schema)
    elements = int(
        sum(int(data[name][0].sum()) for name in schema.sparse_names)
    ) + len(data["label"]) * (1 + len(schema.dense_names))
    file_bytes = writer.write(data)
    results = _pair(
        "rowfile_write",
        elements,
        len(file_bytes),
        lambda: writer.write_scalar(data),
        lambda: writer.write(data),
        reps,
        _check_bytes,
    )

    # record-boundary discovery alone: the per-row reference walk vs the
    # batched scan (the read path's former bottleneck)
    reader = RowFileReader(file_bytes)
    body = np.frombuffer(file_bytes, dtype=np.uint8, count=reader._body_end)
    terminators = np.flatnonzero(body < 0x80)

    def _check_scan(a, b) -> None:
        if not all(np.array_equal(x, y) for x, y in zip(a, b)):
            raise ReproError("batched scan geometry differs from scalar walk")

    results += _pair(
        "rowfile_scan",
        elements,
        len(file_bytes),
        lambda: reader._scan_records_scalar(body, terminators),
        lambda: reader._scan_records(body, terminators),
        reps,
        _check_scan,
    )

    wanted = ["label"] + schema.dense_names + schema.sparse_names
    read_t = _best_of(lambda: RowFileReader(file_bytes).read_columns(wanted), reps)
    results.append(
        _result("rowfile_read", "vectorized", elements, len(file_bytes), read_t)
    )
    return results


def bench_ingestion(size: int, reps: int, seed: int) -> List[BenchResult]:
    """Warehouse batch assembly: labeled examples -> columnar raw table."""
    from repro.features.ingestion import InferenceServerSimulator, LabeledExample, Warehouse
    from repro.features.specs import get_model

    spec = get_model("RM1")
    num_rows = max(size // (spec.num_dense + spec.num_sparse * 10), 1)
    simulator = InferenceServerSimulator(spec, seed=seed, bot_fraction=0.0)
    impressions, _ = simulator.generate(num_rows)
    examples = [LabeledExample(event=event, label=0) for event in impressions]
    cells = sum(
        1 + len(event.dense) + sum(len(f) for f in event.sparse)
        for event in impressions
    )

    def assemble():
        warehouse = Warehouse(spec)
        warehouse.ingest(examples)
        return warehouse.to_table()

    table = assemble()
    payload = sum(
        array.nbytes
        for value in table.values()
        for array in (value if isinstance(value, tuple) else (value,))
    )
    elapsed = _best_of(assemble, max(1, reps // 2))
    return [_result("ingestion_assembly", "vectorized", cells, payload, elapsed)]


def bench_engine(size: int, reps: int) -> List[BenchResult]:
    """Discrete-event kernel: timeout ping-pong, measured in events."""
    from repro.sim.engine import Engine, Timeout

    num_processes = 100
    steps = max(size // num_processes, 1)

    def run():
        engine = Engine()

        def proc():
            for _ in range(steps):
                yield Timeout(1.0)

        for index in range(num_processes):
            engine.spawn(f"p{index}", proc())
        return engine.run()

    events = num_processes * (steps + 1)  # one spawn event + one per timeout
    elapsed = _best_of(run, max(1, reps // 2))
    # an "element" is one dispatched event; payload is the heap-entry traffic
    return [_result("engine_events", "vectorized", events, events * 40, elapsed)]


def bench_pipeline(size: int, reps: int, seed: int) -> List[BenchResult]:
    """Fused Transform phase: cached per-pipeline kernels vs naive driver.

    The "scalar" baseline is what a driver pays when it treats the pipeline
    as per-batch state (a fresh :class:`PreprocessingPipeline` — boundary
    generation, validation, hash constants — for every partition); the
    "vectorized" side is one prepared pipeline's fused ``run_many``.
    """
    from repro.api.preprocess import minibatch_digest
    from repro.features.specs import get_model
    from repro.features.synthetic import SyntheticTableGenerator
    from repro.ops.pipeline import PreprocessingPipeline

    spec = get_model("RM1")
    counts = spec.num_dense + spec.num_generated_sparse + int(
        round(spec.sparse_elements_per_sample())
    )
    num_rows = max(size // counts, 256)
    rows_per_batch = min(2048, num_rows)
    generator = SyntheticTableGenerator(spec, seed=seed)
    shards = [
        generator.generate(min(rows_per_batch, num_rows - start), partition=p)
        for p, start in enumerate(range(0, num_rows, rows_per_batch))
    ]
    elements = counts * num_rows
    pipeline = PreprocessingPipeline(spec, generator_seed=seed)

    def naive():
        return [
            PreprocessingPipeline(spec, generator_seed=seed).run(raw, batch_id=k)
            for k, raw in enumerate(shards)
        ]

    def fused():
        return pipeline.run_many(shards)

    def check(a, b) -> None:
        if minibatch_digest([x[0] for x in a]) != minibatch_digest(
            [x[0] for x in b]
        ):
            raise ReproError("fused pipeline output differs from naive driver")

    payload = sum(batch.nbytes() for batch, _ in fused())
    return _pair(
        "pipeline_fused",
        elements,
        payload,
        naive,
        fused,
        max(1, reps // 2),
        check,
    )


def bench_shard_executor(size: int, reps: int, seed: int) -> List[BenchResult]:
    """End-to-end sharded data plane: partition -> write -> read -> transform."""
    from repro.exec.executor import ShardExecutor, ShardRunStats
    from repro.features.specs import get_model
    from repro.features.synthetic import SyntheticTableGenerator
    from repro.ops.pipeline import PreprocessingPipeline

    spec = get_model("RM1")
    counts = spec.num_dense + spec.num_generated_sparse + int(
        round(spec.sparse_elements_per_sample())
    )
    num_rows = max(size // counts, 256)
    generator = SyntheticTableGenerator(spec, seed=seed)
    data = generator.generate(num_rows)
    pipeline = PreprocessingPipeline(spec, generator_seed=seed)
    executor = ShardExecutor(
        pipeline, rows_per_shard=min(2048, num_rows), processes=1
    )

    def run():
        return executor.run(data, parallel=False)

    stats = ShardRunStats.from_results(run())
    elapsed = _best_of(run, max(1, reps // 2))
    return [
        _result(
            "shard_executor",
            "vectorized",
            stats.transform_elements,
            stats.file_bytes,
            elapsed,
        )
    ]


def bench_serve(size: int, reps: int, seed: int) -> List[BenchResult]:
    """Streaming-service overhead, measured with a no-op data plane.

    ``serve_queue`` is the raw bounded-queue + worker-pool round trip (what
    the daemon adds on top of the executor per job); ``serve_lifecycle`` is
    the full service path — submit, lifecycle record transitions, JSONL
    index appends — so the payload is the real bytes the job index writes.
    """
    import shutil
    import tempfile

    from repro.api.preprocess import PreprocessJob
    from repro.serve import BoundedJobQueue, PreprocessService, WorkerPool

    num_jobs = max(min(size // 1000, 512), 32)

    def pump() -> int:
        queue = BoundedJobQueue(capacity=num_jobs)
        done: List[int] = []
        pool = WorkerPool(
            queue,
            lambda item, attempt: item,
            num_workers=2,
            on_done=lambda item, result, error: done.append(item),
        )
        pool.start()
        for item in range(num_jobs):
            queue.put(item)
        pool.drain(timeout=60.0)
        return len(done)

    elapsed = _best_of(pump, max(1, reps // 2))
    # payload here is bookkeeping, not data: count one queue slot per job
    results = [_result("serve_queue", "vectorized", num_jobs, num_jobs * 64, elapsed)]

    index_bytes = 0

    def lifecycle() -> None:
        nonlocal index_bytes
        import os

        spool = tempfile.mkdtemp(prefix="repro-bench-serve-")
        try:
            with PreprocessService(
                spool_dir=spool,
                queue_capacity=num_jobs,
                num_workers=2,
                runner=lambda job, record_stage: "bench-digest",
            ) as service:
                records = [
                    service.submit(PreprocessJob(model="RM1", num_rows=64, seed=i))
                    for i in range(num_jobs)
                ]
                for record in records:
                    service.wait(record.job_id, timeout=60.0)
            index_bytes = os.path.getsize(os.path.join(spool, "jobs.jsonl"))
        finally:
            shutil.rmtree(spool, ignore_errors=True)

    elapsed = _best_of(lifecycle, max(1, reps // 2))
    results.append(
        _result("serve_lifecycle", "vectorized", num_jobs, index_bytes, elapsed)
    )
    return results


def bench_faults(size: int, reps: int, seed: int) -> List[BenchResult]:
    """Robustness-tier costs: crash recovery and the chaos matrix.

    ``serve_recovery`` measures a cold start over a spool whose index holds
    N interrupted jobs — replay, re-enqueue, and re-execution through a
    stub data plane (the recovery machinery itself, not the numpy kernels).
    ``chaos_matrix`` times one seeded worker-crash episode end to end with
    the same stub runner, so the number tracks harness + service overhead.
    """
    import os
    import shutil
    import tempfile
    import time as _time

    from repro.api.preprocess import PreprocessJob
    from repro.faults.chaos import run_episode
    from repro.serve import JobLogIndex, PreprocessService
    from repro.serve.records import JobRecord

    num_jobs = max(min(size // 4000, 128), 16)
    job = PreprocessJob(model="RM1", num_rows=64, num_shards=1, seed=0)

    def recover() -> int:
        spool = tempfile.mkdtemp(prefix="repro-bench-recover-")
        try:
            index = JobLogIndex(os.path.join(spool, "jobs.jsonl"))
            now = _time.time()
            for i in range(1, num_jobs + 1):
                record = JobRecord(
                    job_id=f"job-{i:06d}", job=job, submitted_at=now
                )
                index.append(record)
                index.append(record.mark_running(now))
            service = PreprocessService(
                spool_dir=spool,
                queue_capacity=16,
                num_workers=2,
                runner=lambda job, record_stage: "bench-digest",
            )
            service.start()
            for job_id in service.recovered_jobs:
                service.wait(job_id, timeout=60.0)
            service.stop(drain=True, timeout=60.0)
            return len(service.recovered_jobs)
        finally:
            shutil.rmtree(spool, ignore_errors=True)

    elapsed = _best_of(recover, max(1, reps // 2))
    results = [
        _result("serve_recovery", "vectorized", num_jobs, num_jobs * 64, elapsed)
    ]

    def episode() -> None:
        spool = tempfile.mkdtemp(prefix="repro-bench-chaos-")
        try:
            run_episode(
                "worker-crash",
                seed=seed,
                spool_dir=spool,
                num_jobs=num_jobs // 2,
                workers=2,
                job_timeout_s=10.0,
                runner=lambda job, record_stage: "bench-digest",
                verify_serial=False,
            )
        finally:
            shutil.rmtree(spool, ignore_errors=True)

    elapsed = _best_of(episode, max(1, reps // 2))
    results.append(
        _result(
            "chaos_matrix", "vectorized", num_jobs // 2,
            (num_jobs // 2) * 64, elapsed,
        )
    )
    return results


def _bench_batch_task(payload_kb: int) -> int:
    """Module-level so both ``pool.map`` and the batch runner can run it
    in forked workers; a few ms of real hashing per task, so the measured
    difference is dispatch overhead, not noise."""
    import hashlib

    return hashlib.sha256(b"\x5a" * (payload_kb * 1024)).digest()[0]


def bench_batch(size: int, reps: int, seed: int) -> List[BenchResult]:
    """Batch-tier costs: per-task dispatch vs raw ``pool.map``, and the
    journal's append/replay path.

    ``batch_pool_map`` and ``batch_runner`` run the identical task list
    through ``multiprocessing.Pool.map`` and through
    :class:`~repro.batch.runner.BatchRunner` (same worker count, no
    journal); the runner's per-task dispatch — what buys retries,
    timeouts, and per-task outcomes — must stay within ~10% of the
    all-or-nothing map.  ``batch_journal_append`` / ``batch_journal_replay``
    time one terminal line's append and one line's share of a full
    :meth:`~repro.batch.journal.BatchJournal.load`.
    """
    import multiprocessing
    import os
    import shutil
    import tempfile

    from repro.batch import (
        BatchJournal,
        BatchOutcome,
        BatchPolicy,
        BatchRunner,
    )

    num_tasks = 12
    payload_kb = 2048
    tasks = [payload_kb] * num_tasks
    payload_bytes = num_tasks * payload_kb * 1024
    ctx = multiprocessing.get_context("fork")

    def pool_map() -> List[int]:
        with ctx.Pool(2) as pool:
            return pool.map(_bench_batch_task, tasks)

    def runner() -> List[int]:
        batch = BatchRunner(
            _bench_batch_task,
            policy=BatchPolicy(processes=2, failure_mode="degrade"),
        )
        return [o.result for o in batch.run(tasks)]

    # alternate the two variants so transient load hits both equally
    if pool_map() != runner():
        raise ReproError("batch runner output differs from pool.map")
    map_t = runner_t = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        pool_map()
        map_t = min(map_t, time.perf_counter() - start)
        start = time.perf_counter()
        runner()
        runner_t = min(runner_t, time.perf_counter() - start)
    results = [
        _result("batch_pool_map", "vectorized", num_tasks, payload_bytes, map_t),
        _result(
            "batch_runner", "vectorized", num_tasks, payload_bytes,
            runner_t, map_t,
        ),
    ]

    num_lines = max(min(size // 100, 2000), 200)
    spool = tempfile.mkdtemp(prefix="repro-bench-batch-")
    try:
        path = os.path.join(spool, "bench.jsonl")
        keys = [f"task-{i}" for i in range(num_lines)]
        outcomes = [
            BatchOutcome(index=i, key=keys[i], label=keys[i], state="ok",
                         attempts=1, elapsed_s=0.001, result=i)
            for i in range(num_lines)
        ]

        def journal_append() -> None:
            journal = BatchJournal(path, run_id="bench")
            journal.start_run(keys, BatchPolicy(failure_mode="degrade"))
            for outcome in outcomes:
                journal.task_done(outcome, payload=outcome.result)

        elapsed = _best_of(journal_append, reps)
        journal_bytes = os.path.getsize(path)
        results.append(
            _result("batch_journal_append", "vectorized", num_lines,
                    journal_bytes, elapsed)
        )

        def journal_replay() -> int:
            return len(BatchJournal(path, run_id="bench").load().outcomes)

        if journal_replay() != num_lines:
            raise ReproError("journal replay lost terminal lines")
        elapsed = _best_of(journal_replay, reps)
        results.append(
            _result("batch_journal_replay", "vectorized", num_lines,
                    journal_bytes, elapsed)
        )
    finally:
        shutil.rmtree(spool, ignore_errors=True)
    return results


def bench_fleet(size: int, reps: int, seed: int) -> List[BenchResult]:
    """Fleet tier: seeded trace generation and the scheduler step loop."""
    from repro.fleet import PoolSpec, generate_trace
    from repro.fleet.simulator import FleetSimulator

    # arrivals/s of the seeded generator (dominated by the rng draws and
    # the dataclass validation per arrival)
    num_arrivals = max(size // 10, 1_000)

    def gen():
        return generate_trace("diurnal", num_jobs=num_arrivals, seed=seed)

    trace_bytes = len(gen().to_jsonl().encode())
    results = [
        _result(
            "trace_gen", "vectorized", num_arrivals, trace_bytes,
            _best_of(gen, reps),
        )
    ]

    # events/s of the simulator: time-step ticks plus one arrival and one
    # completion event per job, on a small heterogeneous fleet
    num_jobs = max(size // 2_000, 25)
    trace = generate_trace(
        "diurnal",
        num_jobs=num_jobs,
        seed=seed + 1,
        horizon_s=6 * 3600.0,
        mean_duration_s=1200.0,
    )
    pools = (
        PoolSpec(
            name="disagg-cpu", system="Disagg", nodes=48,
            workers_per_node=32, min_nodes=16, max_nodes=96,
            scaleup_latency_s=120.0,
        ),
        PoolSpec(
            name="presto-ssd", system="PreSto", nodes=8, workers_per_node=8,
            min_nodes=4, max_nodes=32, scaleup_latency_s=120.0,
        ),
    )

    def run():
        simulator = FleetSimulator(
            trace, pools=pools, policy="best-fit",
            autoscaler="target-utilization",
        )
        return simulator.run()

    outcome = run()
    steps = int(outcome.makespan_s // 60.0) + 1
    events = steps + 2 * outcome.num_jobs
    elapsed = _best_of(run, max(1, reps // 2))
    # an "element" is one simulator event; payload is the heap-entry traffic
    results.append(
        _result("fleet_step", "vectorized", events, events * 48, elapsed)
    )
    return results


def bench_ops(size: int, reps: int, rng: np.random.Generator) -> List[BenchResult]:
    """The numpy preprocessing kernels the Transform phase is built from."""
    from repro.ops.bucketize import bucketize
    from repro.ops.lognorm import log_normalize
    from repro.ops.sigridhash import sigrid_hash

    dense = rng.lognormal(1.5, 1.2, size).astype(np.float64)
    sparse = rng.integers(0, 2**40, size).astype(np.int64)
    boundaries = np.sort(rng.lognormal(1.5, 1.2, 4096))
    results = []
    for op, fn, payload in (
        ("sigrid_hash", lambda: sigrid_hash(sparse, 0xC0FFEE, 500_000), sparse.nbytes),
        ("bucketize", lambda: bucketize(dense, boundaries), dense.nbytes),
        ("log_normalize", lambda: log_normalize(dense), dense.nbytes),
    ):
        results.append(_result(op, "vectorized", size, payload, _best_of(fn, reps)))
    return results


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

#: (size, reps) per mode; quick keeps CI smoke runs in single-digit seconds
_MODES = {
    "full": {"size": 1_000_000, "reps": 5, "engine_size": 200_000},
    "quick": {"size": 50_000, "reps": 3, "engine_size": 20_000},
}


def run_benchmarks(quick: bool = False, seed: int = 0) -> Dict[str, object]:
    """Run every benchmark; returns the ``BENCH_kernels.json`` payload."""
    mode = _MODES["quick" if quick else "full"]
    size, reps = mode["size"], mode["reps"]
    results: List[BenchResult] = []
    results += bench_varint(size, reps, np.random.default_rng(seed))
    results += bench_rle(size, reps, np.random.default_rng(seed + 1))
    results += bench_rowformat(size, reps, np.random.default_rng(seed + 2))
    results += bench_ingestion(min(size, 200_000), reps, seed + 3)
    results += bench_engine(mode["engine_size"], reps)
    results += bench_ops(size, reps, np.random.default_rng(seed + 4))
    results += bench_pipeline(min(size, 500_000), reps, seed + 5)
    results += bench_shard_executor(min(size, 500_000), reps, seed + 6)
    results += bench_serve(min(size, 200_000), reps, seed + 7)
    results += bench_faults(min(size, 200_000), reps, seed + 8)
    results += bench_batch(min(size, 200_000), reps, seed + 9)
    results += bench_fleet(min(size, 200_000), reps, seed + 10)
    return {
        "schema_version": _SCHEMA_VERSION,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": [r.to_dict() for r in results],
    }


def render_report(report: Dict[str, object]) -> str:
    """Human-readable table of one benchmark report."""
    from repro.experiments.common import format_table

    rows = []
    for entry in report["results"]:
        rows.append(
            (
                entry["op"],
                entry["variant"],
                entry["size"],
                entry["ns_per_element"],
                entry["mb_per_s"],
                (
                    f"{entry['speedup_vs_scalar']:.1f}x"
                    if "speedup_vs_scalar" in entry
                    else "-"
                ),
            )
        )
    title = "Kernel benchmarks ({} mode)".format(
        "quick" if report["quick"] else "full"
    )
    return format_table(
        ("op", "variant", "size", "ns/element", "MB/s", "vs scalar"), rows, title
    )


def write_report(report: Dict[str, object], path: str) -> None:
    """Write one report as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def telemetry_events(report: Dict[str, object], run_id: str = None):
    """This report as unified timing events — the bridge into the
    :mod:`repro.telemetry` trend surface (one event per op/variant,
    ``ns_per_element``/``mb_per_s`` in ``metrics``)."""
    from repro.telemetry import events_from_bench_report

    return events_from_bench_report(report, run_id=run_id)
